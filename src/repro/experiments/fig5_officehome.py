"""Fig. 5 — per-domain accuracy of all methods on Office-Home."""

from __future__ import annotations

import numpy as np

from ..data.officehome import DOMAINS, make_officehome
from .reporting import format_percent, format_table
from .runner import METHODS, RunConfig, run_methods

__all__ = ["PRESETS", "run", "format_result"]

# The near-convergence regime where the paper's method ordering shows:
# hard enough that accuracies stay below ceiling, conflicted enough that
# plain joint training pays a visible price the manipulation methods
# partially recover.
PRESETS = {
    "quick": {
        "num_classes": 8,
        "samples_per_domain": 80,
        "domain_conflict": 0.4,
        "style_strength": 0.8,
        "epochs": 25,
        "batch_size": 16,
        "lr": 3e-3,
        "num_seeds": 2,
    },
    "full": {
        "num_classes": 15,
        "samples_per_domain": 150,
        "domain_conflict": 0.4,
        "style_strength": 0.8,
        "epochs": 40,
        "batch_size": 16,
        "lr": 3e-3,
        "num_seeds": 3,
    },
}


def run(
    preset: str = "quick",
    methods=METHODS,
    seed: int = 0,
    mocograd_lambda: float = 0.12,
) -> dict:
    """Run Fig. 5; returns per-domain accuracies, averages and ΔM."""
    params = PRESETS[preset]
    benchmark = make_officehome(
        num_classes=params["num_classes"],
        samples_per_domain=params["samples_per_domain"],
        domain_conflict=params["domain_conflict"],
        style_strength=params["style_strength"],
        seed=seed,
    )
    config = RunConfig(
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        seed=seed,
        num_seeds=params.get("num_seeds", 1),
        balancer_kwargs={},
    )
    results = run_methods(benchmark, methods, config)
    accuracy = {
        name: {domain: r.metrics[domain]["accuracy"] for domain in DOMAINS}
        for name, r in results.items()
    }
    average = {name: float(np.mean(list(vals.values()))) for name, vals in accuracy.items()}
    return {
        "preset": preset,
        "accuracy": accuracy,
        "avg_accuracy": average,
        "delta_m": {name: r.delta_m for name, r in results.items()},
    }


def format_result(result: dict) -> str:
    """Render the Fig. 5 table (per-domain accuracy + Avg ACC + ΔM)."""
    headers = ["Method"] + list(DOMAINS) + ["Avg ACC", "ΔM"]
    rows = []
    for method, values in result["accuracy"].items():
        row = [method] + [values[d] for d in DOMAINS]
        row.append(result["avg_accuracy"][method])
        row.append(format_percent(result["delta_m"][method]))
        rows.append(row)
    return format_table(headers, rows, title="Fig. 5 — Office-Home accuracy", float_digits=3)
