"""Terminal (ASCII) plotting for figures.

The paper's figures are line charts, bars and scatter plots; in this
text-only environment the benchmark harness renders them as ASCII so the
*shape* of each figure is visible directly in ``benchmarks/results/`` and
in example output.  Deliberately dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_scatter", "ascii_line_chart", "ascii_bar_chart"]


def _scale(values: np.ndarray, length: int) -> np.ndarray:
    span = values.max() - values.min()
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    return ((values - values.min()) / span * (length - 1)).round().astype(int)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 56,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter plot of (x, y) points with axis ranges in the footer."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.size == 0:
        raise ValueError("xs and ys must be equal-length, non-empty")
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(xs, width)
    rows = _scale(ys, height)
    for col, row in zip(cols, rows):
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"{x_label}: [{xs.min():.4g}, {xs.max():.4g}]   {y_label}: [{ys.min():.4g}, {ys.max():.4g}]")
    return "\n".join(lines)


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 56,
    height: int = 14,
    y_label: str = "value",
) -> str:
    """Multiple named series over a shared integer x-axis (e.g. epochs).

    Each series gets a distinct marker; a legend follows the chart.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (num_points,) = lengths
    if num_points < 2:
        raise ValueError("need at least two points per series")
    all_values = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    low, high = all_values.min(), all_values.max()
    span = high - low or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        values = np.asarray(values, dtype=np.float64)
        for point in range(num_points):
            col = int(round(point / (num_points - 1) * (width - 1)))
            row = int(round((values[point] - low) / span * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"{y_label}: [{low:.4g}, {high:.4g}]  x: 1..{num_points}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 44,
    sort: bool = True,
    fmt: str = "{:+.2%}",
) -> str:
    """Horizontal bars (supports negative values, bar from a zero axis)."""
    if not values:
        raise ValueError("need at least one bar")
    items = sorted(values.items(), key=lambda kv: kv[1], reverse=True) if sort else list(values.items())
    label_width = max(len(name) for name, _ in items)
    magnitudes = np.asarray([abs(v) for _, v in items], dtype=np.float64)
    peak = magnitudes.max() or 1.0
    lines = []
    for name, value in items:
        bar_length = int(round(abs(value) / peak * width))
        bar = ("#" if value >= 0 else "-") * bar_length
        lines.append(f"{name.ljust(label_width)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
