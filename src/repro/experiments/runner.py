"""Shared experiment runner: one (benchmark, method) training run.

Every table/figure reproduction funnels through :func:`run_method`, which
trains the benchmark's model under one balancing method and returns test
metrics, and :func:`run_methods`, which adds the STL baseline and the ΔM
aggregate (Eq. 27) for a whole method list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.balancer import create_balancer
from ..data.base import Benchmark
from ..metrics.delta import delta_m_from_results
from ..training.history import History
from ..training.stl import train_stl_all
from ..training.trainer import MTLTrainer

__all__ = [
    "METHODS",
    "RunConfig",
    "MethodResult",
    "run_method",
    "run_methods",
    "run_stl_baseline",
    "average_metric_dicts",
]

#: Method order used throughout the paper's tables.
METHODS = (
    "equal",
    "dwa",
    "mgda",
    "pcgrad",
    "graddrop",
    "gradvac",
    "cagrad",
    "imtl",
    "rlw",
    "nashmtl",
    "mocograd",
)


@dataclass
class RunConfig:
    """Training hyper-parameters for one experiment.

    ``num_seeds`` repeats each run with seeds ``seed, seed+1, …`` and
    averages the metrics — the synthetic-scale analogue of the paper's
    "average of ten runs" protocol (essential here, since at laptop scale
    single-seed noise exceeds the between-method gaps).
    """

    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-3
    optimizer: str = "adam"
    seed: int = 0
    architecture: str = "hps"
    max_steps_per_epoch: int | None = None
    balancer_kwargs: dict = field(default_factory=dict)
    num_seeds: int = 1


@dataclass
class MethodResult:
    """Test metrics of one method plus its ΔM against the STL baseline.

    ``history`` is the training :class:`~repro.training.history.History`
    of the run (the last seed's when seed-averaging); ``telemetry`` is the
    per-run digest from :meth:`repro.obs.Telemetry.summary` — span timing
    statistics plus the metric snapshot (conflict counters, MoCoGrad
    calibration counts).
    """

    method: str
    metrics: dict[str, dict[str, float]]
    delta_m: float | None = None
    history: History | None = None
    telemetry: dict | None = None


def average_metric_dicts(runs: Sequence[Mapping[str, Mapping[str, float]]]) -> dict:
    """Element-wise mean of ``{task: {metric: value}}`` dictionaries."""
    if not runs:
        raise ValueError("need at least one run")
    averaged: dict[str, dict[str, float]] = {}
    for task in runs[0]:
        averaged[task] = {
            metric: float(np.mean([run[task][metric] for run in runs]))
            for metric in runs[0][task]
        }
    return averaged


def _run_method_once(benchmark: Benchmark, method: str, config: RunConfig, seed: int):
    balancer = create_balancer(method, seed=seed, **config.balancer_kwargs)
    rng = np.random.default_rng(seed)
    model = benchmark.build_model(config.architecture, rng)
    trainer = MTLTrainer(
        model,
        benchmark.tasks,
        balancer,
        mode=benchmark.mode,
        optimizer=config.optimizer,
        lr=config.lr,
        seed=seed,
    )
    trainer.fit(
        benchmark.train,
        config.epochs,
        config.batch_size,
        max_steps_per_epoch=config.max_steps_per_epoch,
    )
    return trainer.evaluate(benchmark.test), trainer


def run_method(
    benchmark: Benchmark,
    method: str,
    config: RunConfig,
    return_trainer: bool = False,
):
    """Train ``benchmark`` under ``method`` and return test metrics.

    ``method`` is a registered balancer name.  Use
    :func:`repro.training.train_stl_all` for the STL row.  With
    ``config.num_seeds > 1`` the returned metrics are seed averages (the
    trainer returned with ``return_trainer`` is the last seed's).
    """
    runs = []
    trainer = None
    for offset in range(max(config.num_seeds, 1)):
        metrics, trainer = _run_method_once(benchmark, method, config, config.seed + offset)
        runs.append(metrics)
    metrics = average_metric_dicts(runs)
    if return_trainer:
        return metrics, trainer
    return metrics


def run_stl_baseline(benchmark: Benchmark, config: RunConfig) -> dict:
    """Seed-averaged STL metrics matching ``run_method``'s protocol."""
    runs = []
    for offset in range(max(config.num_seeds, 1)):
        runs.append(
            train_stl_all(
                benchmark,
                config.epochs,
                config.batch_size,
                lr=config.lr,
                optimizer=config.optimizer,
                seed=config.seed + offset,
                max_steps_per_epoch=config.max_steps_per_epoch,
            )
        )
    return average_metric_dicts(runs)


def run_methods(
    benchmark: Benchmark,
    methods: Sequence[str] = METHODS,
    config: RunConfig | None = None,
    stl_metrics: Mapping[str, Mapping[str, float]] | None = None,
) -> dict[str, MethodResult]:
    """Run STL plus all ``methods``; attach ΔM per method.

    Returns ``{"stl": MethodResult, method: MethodResult, ...}``; the STL
    row carries ΔM = 0 by definition.
    """
    config = config or RunConfig()
    if stl_metrics is None:
        stl_metrics = run_stl_baseline(benchmark, config)
    directions = {
        task.name: dict(task.higher_is_better) for task in benchmark.tasks
    }
    results = {"stl": MethodResult("stl", dict(stl_metrics), 0.0)}
    for method in methods:
        metrics, trainer = run_method(benchmark, method, config, return_trainer=True)
        delta = delta_m_from_results(metrics, stl_metrics, directions)
        results[method] = MethodResult(
            method,
            metrics,
            delta,
            history=trainer.history,
            telemetry=trainer.telemetry.summary(),
        )
    return results
