"""Table I — AUC on the AliExpress scenarios (2 × 4 tasks + ΔM).

For each country scenario (ES, FR, NL, US) every method trains a 2-task
CTR/CTCVR model; the table reports per-task AUC plus the ΔM aggregate over
all eight task metrics, exactly the layout of the paper's Table I.
"""

from __future__ import annotations

from ..data.aliexpress import COUNTRIES, make_aliexpress_suite
from ..metrics.delta import delta_m
from .reporting import format_percent, format_table
from .runner import METHODS, RunConfig, run_method, run_stl_baseline

__all__ = ["PRESETS", "run", "format_result"]

PRESETS = {
    "quick": {"num_records": 1500, "epochs": 4, "batch_size": 128, "lr": 2e-3, "num_seeds": 2},
    "full": {"num_records": 6000, "epochs": 10, "batch_size": 256, "lr": 1e-3, "num_seeds": 3},
}


def run(
    preset: str = "quick",
    methods=METHODS,
    seed: int = 0,
    mocograd_lambda: float = 0.12,
) -> dict:
    """Run Table I; returns ``{"auc": {method: {country_task: auc}}, "delta_m": ...}``."""
    params = PRESETS[preset]
    suite = make_aliexpress_suite(num_records=params["num_records"], seed=seed)

    def config_for(method: str) -> RunConfig:
        kwargs = {"calibration": mocograd_lambda} if method == "mocograd" else {}
        return RunConfig(
            epochs=params["epochs"],
            batch_size=params["batch_size"],
            lr=params["lr"],
            seed=seed,
            balancer_kwargs=kwargs,
            num_seeds=params.get("num_seeds", 1),
        )

    auc: dict[str, dict[str, float]] = {"stl": {}}
    stl_flat: dict[str, float] = {}
    base_config = config_for("equal")
    for country, benchmark in suite.items():
        stl = run_stl_baseline(benchmark, base_config)
        for task in ("CTR", "CTCVR"):
            key = f"{country}_{task}"
            auc["stl"][key] = stl[task]["auc"]
            stl_flat[key] = stl[task]["auc"]

    delta: dict[str, float] = {"stl": 0.0}
    for method in methods:
        auc[method] = {}
        for country, benchmark in suite.items():
            metrics = run_method(benchmark, method, config_for(method))
            for task in ("CTR", "CTCVR"):
                auc[method][f"{country}_{task}"] = metrics[task]["auc"]
        keys = sorted(stl_flat)
        delta[method] = delta_m(
            [auc[method][k] for k in keys],
            [stl_flat[k] for k in keys],
            [True] * len(keys),
        )
    return {"auc": auc, "delta_m": delta, "preset": preset}


def format_result(result: dict) -> str:
    """Render in the paper's Table I layout."""
    columns = [f"{c}_{t}" for c in COUNTRIES for t in ("CTR", "CTCVR")]
    headers = ["Method"] + columns + ["ΔM"]
    rows = []
    for method, values in result["auc"].items():
        row = [method] + [values[c] for c in columns]
        row.append(format_percent(result["delta_m"][method]))
        rows.append(row)
    return format_table(headers, rows, title="Table I — AliExpress AUC")
