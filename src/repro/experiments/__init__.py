"""``repro.experiments`` — per-table/figure reproduction runners.

Each module exposes ``run(preset)`` returning structured results and
``format_result`` printing the paper's layout.  The registry maps
experiment ids (``table1`` … ``fig9``) to their entry points; see DESIGN.md
for the experiment index.
"""

from . import (
    fig5_officehome,
    table1_aliexpress,
    table2_regression,
    table3_nyuv2,
    table4_cityscapes,
)
from .plots import ascii_bar_chart, ascii_line_chart, ascii_scatter
from .reporting import format_percent, format_table
from .summary import ARTIFACT_ORDER, missing_results, summarize_results
from .runner import (
    METHODS,
    MethodResult,
    RunConfig,
    average_metric_dicts,
    run_method,
    run_methods,
    run_stl_baseline,
)

__all__ = [
    "METHODS",
    "RunConfig",
    "MethodResult",
    "run_method",
    "run_methods",
    "run_stl_baseline",
    "average_metric_dicts",
    "format_table",
    "format_percent",
    "table1_aliexpress",
    "table2_regression",
    "table3_nyuv2",
    "table4_cityscapes",
    "fig5_officehome",
    "REGISTRY",
    "ARTIFACT_ORDER",
    "summarize_results",
    "missing_results",
    "ascii_scatter",
    "ascii_line_chart",
    "ascii_bar_chart",
]

#: Experiment id → (module with run/format_result, paper artifact).
REGISTRY = {
    "table1": (table1_aliexpress, "Table I — AliExpress AUC"),
    "table2": (table2_regression, "Table II — QM9/MovieLens regression"),
    "table3": (table3_nyuv2, "Table III — NYUv2"),
    "table4": (table4_cityscapes, "Table IV — CityScapes"),
    "fig5": (fig5_officehome, "Fig. 5 — Office-Home accuracy"),
}
