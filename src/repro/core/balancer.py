"""Gradient balancer abstraction and registry.

A *balancer* is the pluggable optimization-side component of multi-task
learning: given the per-task gradients of the shared parameters at one
optimization step (a ``(K, d)`` matrix) and the per-task loss values, it
produces the single update direction the optimizer applies.  MoCoGrad and
every baseline in the paper (DWA, MGDA, PCGrad, GradDrop, GradVac, CAGrad,
IMTL, RLW, Nash-MTL) fit this interface; loss-weighting methods are expressed
as weighted gradient sums, which is mathematically identical to weighting the
losses before one backward pass.

Balancers may be stateful (momentum, loss history, EMA similarities); call
:meth:`GradientBalancer.reset` when starting a new training run.

Pairwise kernels: :meth:`GradientBalancer._check_inputs` builds one
:class:`~repro.core.gradstats.GradStats` per step — a lazy cache of the
K×K Gram matrix, per-task norms, pairwise cosines, and the conflict
mask — exposed as :attr:`GradientBalancer.gradstats`.  The base class's
conflict telemetry and every conflict-aware balancer read this shared
cache instead of recomputing inner products.  ``pairwise_mode`` selects
between the ``"vectorized"`` kernels (default) and the original
``"loop"`` reference implementations in MoCoGrad / PCGrad / GradVac;
the two produce matching trajectories and identical telemetry counters
(see ``tests/balancers/test_pairwise_modes.py``).
"""

from __future__ import annotations

import functools
from typing import Callable

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry
from .conflict import _balancer_hot_path
from .gradstats import GradStats

__all__ = ["GradientBalancer", "register_balancer", "create_balancer", "available_balancers"]

PAIRWISE_MODES = ("vectorized", "loop")


def _wrap_hot_path(balance: Callable) -> Callable:
    """Mark the dynamic extent of ``balance()`` for the deprecation guard.

    Per-pair use of :func:`repro.core.conflict.cosine_similarity` /
    :func:`gradient_conflict_degree` inside this extent triggers a
    one-shot :class:`DeprecationWarning` pointing at ``self.gradstats``.
    """

    @functools.wraps(balance)
    def wrapped(self, grads, losses):
        with _balancer_hot_path():
            return balance(self, grads, losses)

    wrapped.__wrapped_hot_path__ = True
    return wrapped


class GradientBalancer:
    """Base class for gradient manipulation / weighting strategies."""

    #: registry name; subclasses set this
    name: str = "base"

    #: Small-K kernel dispatch: under ``pairwise_mode="vectorized"`` the
    #: loop kernel still runs when K < this threshold, where the
    #: vectorized kernels' fixed overhead (mask construction, coefficient
    #: matrices, the final GEMM) exceeds the cost of a handful of pairs.
    #: Both kernels produce matching trajectories, so this is purely a
    #: performance choice; tests set it to 0 to force the vectorized
    #: kernel at every K.
    vectorize_min_tasks: int = 4

    def __init__(self, seed: int | None = None, pairwise_mode: str = "vectorized") -> None:
        if pairwise_mode not in PAIRWISE_MODES:
            raise ValueError(
                f"pairwise_mode must be one of {PAIRWISE_MODES}; got {pairwise_mode!r}"
            )
        self._seed = seed
        self.rng = np.random.default_rng(seed)
        self.num_tasks: int | None = None
        #: ``"vectorized"`` (GradStats-backed kernels) or ``"loop"`` (the
        #: original per-pair reference loops, kept as the equivalence
        #: oracle).  Balancers without a pairwise loop ignore this.
        self.pairwise_mode = pairwise_mode
        #: telemetry hook; :class:`~repro.training.trainer.MTLTrainer`
        #: replaces the inert default with its own instance, so every
        #: balancer gets per-step conflict counters for free.
        self.telemetry: Telemetry = NULL_TELEMETRY
        self._stats: GradStats | None = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        balance = cls.__dict__.get("balance")
        if balance is not None and not getattr(balance, "__wrapped_hot_path__", False):
            cls.balance = _wrap_hot_path(balance)

    # ------------------------------------------------------------------
    @property
    def gradstats(self) -> GradStats | None:
        """Per-step pairwise-geometry cache over the current gradients.

        Built by :meth:`_check_inputs` at the top of every
        :meth:`balance` call; ``None`` before the first call.  All
        products (Gram, norms, cosines, conflict mask) are lazy — reading
        none of them costs nothing.
        """
        return self._stats

    def _use_vectorized(self, num_tasks: int) -> bool:
        """Whether the vectorized pairwise kernel should run for this K."""
        return self.pairwise_mode == "vectorized" and num_tasks >= self.vectorize_min_tasks

    # ------------------------------------------------------------------
    def reset(self, num_tasks: int) -> None:
        """Prepare internal state for a fresh training run of ``num_tasks``."""
        self.num_tasks = num_tasks
        self.rng = np.random.default_rng(self._seed)

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        """Combine per-task gradients into one update direction.

        Parameters
        ----------
        grads:
            ``(K, d)`` matrix of per-task gradients over shared parameters.
        losses:
            ``(K,)`` vector of current task loss values (some balancers,
            e.g. DWA, use these; others ignore them).

        Returns
        -------
        The combined gradient vector of shape ``(d,)``.
        """
        raise NotImplementedError

    def resolve_accumulated(
        self, grads_sum: np.ndarray, losses_sum: np.ndarray, window: int
    ) -> np.ndarray:
        """Resolve conflicts once on a ``window``-step gradient accumulation.

        The GCond-style accumulate-then-resolve entry point: the trainer
        sums per-task gradient matrices (and loss vectors) over ``window``
        micro-steps, then calls this once.  The default normalizes both to
        their window means and delegates to :meth:`balance`, so any
        stateful balancer (MoCoGrad momentum, DWA loss history, GradVac
        EMA) advances exactly once per resolve rather than once per
        micro-step.  ``window == 1`` is the per-step path itself — the
        inputs are forwarded untouched, keeping the trajectory bit-identical
        to calling :meth:`balance` directly.
        """
        if window < 1:
            raise ValueError(f"accumulation window must be ≥ 1; got {window}")
        if window == 1:
            return self.balance(grads_sum, losses_sum)
        scale = 1.0 / float(window)
        return self.balance(
            np.asarray(grads_sum, dtype=np.float64) * scale,
            np.asarray(losses_sum, dtype=np.float64) * scale,
        )

    # ------------------------------------------------------------------
    def _check_inputs(self, grads: np.ndarray, losses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        grads = np.asarray(grads, dtype=np.float64)
        losses = np.asarray(losses, dtype=np.float64)
        if grads.ndim != 2:
            raise ValueError(f"grads must be (K, d); got shape {grads.shape}")
        if losses.shape != (grads.shape[0],):
            raise ValueError(
                f"losses shape {losses.shape} does not match {grads.shape[0]} tasks"
            )
        if self.num_tasks is None:
            self.reset(grads.shape[0])
        elif self.num_tasks != grads.shape[0]:
            raise ValueError(
                f"balancer was reset for {self.num_tasks} tasks but received {grads.shape[0]}"
            )
        self._stats = GradStats(grads)
        self._record_conflict_telemetry(self._stats)
        return grads, losses

    def dynamics(self) -> dict:
        """Balancer-internal state for the flight recorder (per step).

        Called by :class:`~repro.training.trainer.MTLTrainer` right after
        :meth:`balance` when dynamics recording is on.  The base class has
        no internal dynamics; stateful balancers override this to expose
        theirs (MoCoGrad reports λ and per-task momentum norms).  Values
        must be JSON-ready floats or lists of floats.
        """
        return {}

    def _record_conflict_telemetry(self, stats: GradStats | np.ndarray) -> None:
        """Count conflicting gradient pairs (GCD > 1 ⇔ negative cosine).

        Runs on every :meth:`balance` call of every balancer — the base
        class owns it so each baseline reports the same conflict counters
        the paper's Section III diagnostics are built on.  Skipped when
        telemetry is disabled: the shared :class:`GradStats` is lazy, so
        a disabled-telemetry step with a geometry-free balancer never
        runs the Gram GEMM at all.
        """
        if isinstance(stats, np.ndarray):  # pre-GradStats callers
            stats = GradStats(stats)
        telemetry = self.telemetry
        if not telemetry.enabled or stats.num_tasks < 2:
            return
        pairs, conflicts = stats.conflict_counts()
        telemetry.counter("balancer_pairs_total", method=self.name).inc(pairs)
        telemetry.counter("balancer_conflicts_total", method=self.name).inc(conflicts)
        telemetry.gauge("balancer_conflict_fraction", method=self.name).set(
            conflicts / pairs
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Callable[..., GradientBalancer]] = {}


def register_balancer(name: str):
    """Class decorator adding a balancer to the global registry."""

    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(f"balancer {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def create_balancer(name: str, **kwargs) -> GradientBalancer:
    """Instantiate a registered balancer by name (e.g. ``"mocograd"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown balancer {name!r}; available: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_balancers() -> list[str]:
    """Names of all registered balancers, sorted."""
    return sorted(_REGISTRY)
