"""Gradient balancer abstraction and registry.

A *balancer* is the pluggable optimization-side component of multi-task
learning: given the per-task gradients of the shared parameters at one
optimization step (a ``(K, d)`` matrix) and the per-task loss values, it
produces the single update direction the optimizer applies.  MoCoGrad and
every baseline in the paper (DWA, MGDA, PCGrad, GradDrop, GradVac, CAGrad,
IMTL, RLW, Nash-MTL) fit this interface; loss-weighting methods are expressed
as weighted gradient sums, which is mathematically identical to weighting the
losses before one backward pass.

Balancers may be stateful (momentum, loss history, EMA similarities); call
:meth:`GradientBalancer.reset` when starting a new training run.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry

__all__ = ["GradientBalancer", "register_balancer", "create_balancer", "available_balancers"]


class GradientBalancer:
    """Base class for gradient manipulation / weighting strategies."""

    #: registry name; subclasses set this
    name: str = "base"

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self.rng = np.random.default_rng(seed)
        self.num_tasks: int | None = None
        #: telemetry hook; :class:`~repro.training.trainer.MTLTrainer`
        #: replaces the inert default with its own instance, so every
        #: balancer gets per-step conflict counters for free.
        self.telemetry: Telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    def reset(self, num_tasks: int) -> None:
        """Prepare internal state for a fresh training run of ``num_tasks``."""
        self.num_tasks = num_tasks
        self.rng = np.random.default_rng(self._seed)

    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        """Combine per-task gradients into one update direction.

        Parameters
        ----------
        grads:
            ``(K, d)`` matrix of per-task gradients over shared parameters.
        losses:
            ``(K,)`` vector of current task loss values (some balancers,
            e.g. DWA, use these; others ignore them).

        Returns
        -------
        The combined gradient vector of shape ``(d,)``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _check_inputs(self, grads: np.ndarray, losses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        grads = np.asarray(grads, dtype=np.float64)
        losses = np.asarray(losses, dtype=np.float64)
        if grads.ndim != 2:
            raise ValueError(f"grads must be (K, d); got shape {grads.shape}")
        if losses.shape != (grads.shape[0],):
            raise ValueError(
                f"losses shape {losses.shape} does not match {grads.shape[0]} tasks"
            )
        if self.num_tasks is None:
            self.reset(grads.shape[0])
        elif self.num_tasks != grads.shape[0]:
            raise ValueError(
                f"balancer was reset for {self.num_tasks} tasks but received {grads.shape[0]}"
            )
        self._record_conflict_telemetry(grads)
        return grads, losses

    def _record_conflict_telemetry(self, grads: np.ndarray) -> None:
        """Count conflicting gradient pairs (GCD > 1 ⇔ negative cosine).

        Runs on every :meth:`balance` call of every balancer — the base
        class owns it so each baseline reports the same conflict counters
        the paper's Section III diagnostics are built on.  Skipped when
        telemetry is disabled (the dot products exist only to be logged).
        """
        telemetry = self.telemetry
        num_tasks = grads.shape[0]
        if not telemetry.enabled or num_tasks < 2:
            return
        inner = grads @ grads.T
        upper = inner[np.triu_indices(num_tasks, k=1)]
        pairs = upper.size
        conflicts = int(np.count_nonzero(upper < 0.0))
        telemetry.counter("balancer_pairs_total", method=self.name).inc(pairs)
        telemetry.counter("balancer_conflicts_total", method=self.name).inc(conflicts)
        telemetry.gauge("balancer_conflict_fraction", method=self.name).set(
            conflicts / pairs
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Callable[..., GradientBalancer]] = {}


def register_balancer(name: str):
    """Class decorator adding a balancer to the global registry."""

    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(f"balancer {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def create_balancer(name: str, **kwargs) -> GradientBalancer:
    """Instantiate a registered balancer by name (e.g. ``"mocograd"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown balancer {name!r}; available: {sorted(_REGISTRY)}") from None
    return factory(**kwargs)


def available_balancers() -> list[str]:
    """Names of all registered balancers, sorted."""
    return sorted(_REGISTRY)
