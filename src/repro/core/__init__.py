"""``repro.core`` — the paper's primary contribution.

- :class:`~repro.core.mocograd.MoCoGrad`: the momentum-calibrated
  conflicting-gradient balancer (Algorithm 1).
- :mod:`~repro.core.conflict`: GCD / TCI diagnostics (Definitions 2–3).
- :mod:`~repro.core.gradstats`: the shared per-step pairwise-geometry
  cache (Gram, norms, cosines, conflict mask) behind the balancer kernels.
- :mod:`~repro.core.ema`: exponential moving averages and the
  feature-gradient norm normalizer behind ``grad_space="features"``.
- :mod:`~repro.core.theory`: executable forms of Theorems 1–3.
- :mod:`~repro.core.balancer`: the balancer API and registry shared with
  all baselines in :mod:`repro.balancers`.
"""

from .balancer import (
    GradientBalancer,
    available_balancers,
    create_balancer,
    register_balancer,
)
from .conflict import (
    conflict_fraction,
    cosine_similarity,
    gradient_conflict_degree,
    is_conflicting,
    pairwise_gcd,
    task_conflict_intensity,
    tci_profile,
)
from .ema import EMA, EMANormalizer
from .gradstats import GradStats
from .mocograd import MoCoGrad
from .theory import (
    calibrated_gradient_bound,
    check_theorem1,
    corollary1_rate_exponent,
    decaying_schedule,
    regret,
    regret_bound,
    run_convex_descent,
)

__all__ = [
    "GradientBalancer",
    "register_balancer",
    "create_balancer",
    "available_balancers",
    "MoCoGrad",
    "GradStats",
    "EMA",
    "EMANormalizer",
    "cosine_similarity",
    "gradient_conflict_degree",
    "is_conflicting",
    "pairwise_gcd",
    "conflict_fraction",
    "task_conflict_intensity",
    "tci_profile",
    "calibrated_gradient_bound",
    "check_theorem1",
    "regret",
    "regret_bound",
    "corollary1_rate_exponent",
    "decaying_schedule",
    "run_convex_descent",
]
