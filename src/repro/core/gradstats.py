"""Shared per-step cache of pairwise gradient geometry.

Every conflict-aware balancer and every pairwise diagnostic needs the same
handful of products of the ``(K, d)`` per-task gradient matrix: the K×K
Gram matrix, per-task norms, pairwise cosines / GCD (Definition 3), and
the boolean conflict mask of Algorithm 1's line-9 test.  Before this
module each consumer recomputed them independently — the base class's
conflict telemetry ran one GEMM, CAGrad another, and MoCoGrad / PCGrad /
GradVac issued up to three ``d``-length BLAS-1 calls *per task pair* from
Python loops.

:class:`GradStats` computes each product **lazily, at most once** per
step: the Gram matrix is one GEMM, and everything pairwise derives from
it (or from the O(K·d) row-norm reduction) in O(K²).
:meth:`repro.core.balancer.GradientBalancer._check_inputs` constructs one
instance per :meth:`balance` call and exposes it as
:attr:`~repro.core.balancer.GradientBalancer.gradstats`, so the base
class's telemetry and the balancer's own kernel read the same numbers.

Laziness matters for the "telemetry disabled + geometry-free balancer"
case (e.g. equal weighting): constructing a :class:`GradStats` is O(1),
and if nobody reads :attr:`gram` the GEMM never runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GradStats", "gram_matrix"]

_EPS = 1e-12


def gram_matrix(grads: np.ndarray) -> np.ndarray:
    """The K×K Gram matrix ``G Gᵀ`` of a ``(K, d)`` gradient matrix.

    Kept as a module-level function (rather than inlined in
    :class:`GradStats`) so tests can wrap it to count GEMMs.
    """
    return grads @ grads.T


class GradStats:
    """Lazily-computed pairwise statistics over a ``(K, d)`` gradient matrix.

    The input array is referenced, not copied — callers must not mutate it
    while the cache is alive (balancers never do: the cache lives for one
    ``balance()`` call).

    Parameters
    ----------
    grads:
        ``(K, d)`` float64 matrix of per-task gradients.
    eps:
        Norm threshold below which a task gradient counts as zero; zero
        gradients have cosine 0 to everything (neither conflicting nor
        aligned), matching :func:`repro.core.conflict.cosine_similarity`.
    """

    def __init__(self, grads: np.ndarray, eps: float = _EPS) -> None:
        grads = np.asarray(grads, dtype=np.float64)
        if grads.ndim != 2:
            raise ValueError(f"grads must be (K, d); got shape {grads.shape}")
        self.grads = grads
        self.eps = eps
        self._gram: np.ndarray | None = None
        self._norms_sq: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._nonzero: np.ndarray | None = None
        self._cosine: np.ndarray | None = None
        self._conflict_mask: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self.grads.shape[0]

    @property
    def gram(self) -> np.ndarray:
        """``grads @ grads.T`` — the one GEMM everything pairwise shares."""
        if self._gram is None:
            self._gram = gram_matrix(self.grads)
        return self._gram

    @property
    def norms_sq(self) -> np.ndarray:
        """Per-task squared gradient norms ``‖g_k‖²`` (``(K,)``).

        Computed by an O(K·d) row reduction rather than from the Gram
        diagonal, so reading norms never forces the GEMM (and the values
        do not depend on property-access order).
        """
        if self._norms_sq is None:
            self._norms_sq = np.einsum("kd,kd->k", self.grads, self.grads)
        return self._norms_sq

    @property
    def norms(self) -> np.ndarray:
        """Per-task gradient norms ``‖g_k‖`` (``(K,)``)."""
        if self._norms is None:
            self._norms = np.sqrt(self.norms_sq)
        return self._norms

    @property
    def nonzero(self) -> np.ndarray:
        """Boolean ``(K,)`` mask of tasks with ``‖g_k‖ ≥ eps``."""
        if self._nonzero is None:
            self._nonzero = self.norms >= self.eps
        return self._nonzero

    @property
    def cosine(self) -> np.ndarray:
        """Pairwise cosine matrix, clamped to [-1, 1].

        Rows/columns of (numerically) zero gradients are 0, the diagonal
        is exactly 1 — so ``1 - cosine`` (the GCD matrix) can never leave
        Definition 3's [0, 2] range, even under floating-point drift in
        the underlying GEMM.
        """
        if self._cosine is None:
            norms = self.norms
            safe = np.where(self.nonzero, norms, 1.0)
            cos = self.gram / np.outer(safe, safe)
            dead = ~self.nonzero
            cos[dead, :] = 0.0
            cos[:, dead] = 0.0
            np.clip(cos, -1.0, 1.0, out=cos)
            np.fill_diagonal(cos, 1.0)
            self._cosine = cos
        return self._cosine

    @property
    def gcd(self) -> np.ndarray:
        """Pairwise GCD matrix ``1 − cos`` (Definition 3), diagonal 0."""
        return 1.0 - self.cosine

    @property
    def conflict_mask(self) -> np.ndarray:
        """Boolean ``(K, K)``: pair conflicts (GCD > 1 ⇔ cos < 0).

        Derived from the *sign* of the Gram entries (division by positive
        norms preserves sign), with zero-gradient rows/columns excluded —
        an inner product of exactly 0 (e.g. against an all-zero gradient)
        never counts as a conflict.  Diagonal is False.
        """
        if self._conflict_mask is None:
            nonzero = self.nonzero
            mask = (self.gram < 0.0) & nonzero[:, None] & nonzero[None, :]
            np.fill_diagonal(mask, False)
            self._conflict_mask = mask
        return self._conflict_mask

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Cheap per-step dynamics export (feeds the flight recorder).

        O(K²) given the cached Gram/cosine products — no extra ``d``-length
        work beyond what the balancer's own telemetry already forced.
        Returns plain floats/lists (JSON-ready):

        - ``grad_norms`` — per-task gradient norms ``‖g_k‖`` (length K);
        - ``gcd_pairs`` — the upper triangle of the pairwise GCD matrix
          (Definition 3), row-major over i < j (length K(K−1)/2);
        - ``gcd_mean`` / ``gcd_max`` and ``cos_min`` / ``cos_max`` —
          conflict-geometry extrema over distinct pairs;
        - ``conflict_fraction`` — fraction of pairs with GCD > 1.

        With K < 2 the pairwise fields are empty/zero.
        """
        num_tasks = self.num_tasks
        sample: dict = {"grad_norms": self.norms.tolist()}
        if num_tasks < 2:
            sample.update(
                gcd_pairs=[], gcd_mean=0.0, gcd_max=0.0,
                cos_min=0.0, cos_max=0.0, conflict_fraction=0.0,
            )
            return sample
        # Scalar Python over the cached K×K cosine: for the small K this
        # runs at (K ≤ 16 across the paper's benchmarks), plain float math
        # beats the dispatch cost of a dozen tiny numpy ops — this is a
        # per-step hot path when dynamics recording is on.
        rows = self.cosine.tolist()
        cosines = [rows[i][j] for i in range(num_tasks) for j in range(i + 1, num_tasks)]
        # cos < 0 ⇔ gram < 0 for nonzero pairs, and dead rows/columns are
        # exactly 0 — so this matches `conflict_mask` without forcing it.
        conflicts = sum(1 for c in cosines if c < 0.0)
        pairs = len(cosines)
        sample.update(
            gcd_pairs=[1.0 - c for c in cosines],
            gcd_mean=1.0 - sum(cosines) / pairs,
            gcd_max=1.0 - min(cosines),
            cos_min=min(cosines),
            cos_max=max(cosines),
            conflict_fraction=conflicts / pairs,
        )
        return sample

    def conflict_counts(self) -> tuple[int, int]:
        """``(pairs, conflicts)`` over distinct (unordered) task pairs."""
        num_tasks = self.num_tasks
        pairs = num_tasks * (num_tasks - 1) // 2
        if pairs == 0:
            return 0, 0
        upper = self.conflict_mask[np.triu_indices(num_tasks, k=1)]
        return pairs, int(np.count_nonzero(upper))

    def __repr__(self) -> str:
        computed = [
            name
            for name, value in (
                ("gram", self._gram),
                ("norms", self._norms_sq),
                ("cosine", self._cosine),
                ("conflict_mask", self._conflict_mask),
            )
            if value is not None
        ]
        shape = self.grads.shape
        return f"GradStats(shape={shape}, computed={computed})"
