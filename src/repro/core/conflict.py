"""Task-conflict diagnostics from Section III of the paper.

Implements

- **Gradient Conflict Degree** (Definition 3):
  ``GCD(g_i, g_j) = 1 − cos φ_ij``; a gradient conflict occurs iff GCD > 1
  (i.e. the cosine similarity is negative).
- **Task Conflict Intensity** (Definition 2):
  ``TCI(T^k, F) = R_k(F(T^1..T^K)) − R_k(F(T^k))`` — the expected-risk gap
  between the jointly trained model and the single-task model.  For
  lower-is-better metrics (losses, RMSE) a *positive* TCI means joint
  training hurt the task, i.e. task conflict occurred.

These are the quantities behind Fig. 1 and Fig. 2 and behind MoCoGrad's
conflict test (Algorithm 1 line 9).

Hot-path note: the per-pair helpers (:func:`cosine_similarity`,
:func:`gradient_conflict_degree`, :func:`is_conflicting`) are *diagnostic*
API.  Calling them per pair from inside a balancer's ``balance()`` is
deprecated — it recomputes d-length products the shared per-step
:class:`~repro.core.gradstats.GradStats` cache already holds; a one-shot
:class:`DeprecationWarning` fires on the first such call.  The matrix
functions (:func:`pairwise_gcd`, :func:`conflict_fraction`) are backed by
:class:`GradStats` and stay cheap anywhere.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from .gradstats import GradStats

__all__ = [
    "cosine_similarity",
    "gradient_conflict_degree",
    "is_conflicting",
    "pairwise_gcd",
    "conflict_fraction",
    "task_conflict_intensity",
    "tci_profile",
]

_EPS = 1e-12

# ----------------------------------------------------------------------
# Hot-path deprecation guard.  GradientBalancer wraps every subclass's
# balance() in _balancer_hot_path(); the public per-pair helpers warn
# (once per process) when called with the flag set.  The balancers' own
# reference loops call the private _cosine_pair, which never warns.
# ----------------------------------------------------------------------
_hot_path_depth = 0
_hot_path_warned = False


@contextmanager
def _balancer_hot_path():
    """Mark the dynamic extent of a ``GradientBalancer.balance()`` call."""
    global _hot_path_depth
    _hot_path_depth += 1
    try:
        yield
    finally:
        _hot_path_depth -= 1


def _warn_if_hot_path(name: str) -> None:
    global _hot_path_warned
    if _hot_path_depth == 0 or _hot_path_warned:
        return
    _hot_path_warned = True
    warnings.warn(
        f"calling {name}() per pair inside a balancer hot path is deprecated; "
        "read the shared per-step cache instead (balancer.gradstats — Gram, "
        "norms, cosines, and conflict mask are computed once per step). "
        f"{name}() remains supported as a standalone diagnostic.",
        DeprecationWarning,
        stacklevel=3,
    )


def _cosine_pair(grad_i: np.ndarray, grad_j: np.ndarray) -> float:
    """Cosine of two gradient vectors; 0.0 when either is (near) zero."""
    grad_i = np.asarray(grad_i, dtype=np.float64).reshape(-1)
    grad_j = np.asarray(grad_j, dtype=np.float64).reshape(-1)
    norm_i = np.linalg.norm(grad_i)
    norm_j = np.linalg.norm(grad_j)
    if norm_i < _EPS or norm_j < _EPS:
        return 0.0
    return float(np.dot(grad_i, grad_j) / (norm_i * norm_j))


# ----------------------------------------------------------------------
# Per-pair diagnostics (Definition 3)
# ----------------------------------------------------------------------
def cosine_similarity(grad_i: np.ndarray, grad_j: np.ndarray) -> float:
    """Cosine of the angle between two gradient vectors.

    Returns 0.0 when either vector is (numerically) zero, so a vanished
    gradient neither counts as conflicting nor as aligned.
    """
    _warn_if_hot_path("cosine_similarity")
    return _cosine_pair(grad_i, grad_j)


def gradient_conflict_degree(grad_i: np.ndarray, grad_j: np.ndarray) -> float:
    """GCD (Definition 3): ``1 − cos φ_ij`` ∈ [0, 2]."""
    _warn_if_hot_path("gradient_conflict_degree")
    return 1.0 - _cosine_pair(grad_i, grad_j)


def is_conflicting(grad_i: np.ndarray, grad_j: np.ndarray) -> bool:
    """Whether the two task gradients conflict (GCD > 1 ⇔ cos < 0)."""
    _warn_if_hot_path("is_conflicting")
    return _cosine_pair(grad_i, grad_j) < 0.0


# ----------------------------------------------------------------------
# Matrix diagnostics (GradStats-backed)
# ----------------------------------------------------------------------
def pairwise_gcd(grads: np.ndarray, stats: GradStats | None = None) -> np.ndarray:
    """GCD matrix over all task pairs of a ``(K, d)`` gradient matrix.

    The diagonal is 0 (a task never conflicts with itself) and every
    entry is clamped to Definition 3's [0, 2] range — floating-point
    drift in the underlying Gram GEMM can never push a cosine outside
    [-1, 1].  Pass an existing :class:`GradStats` over the same matrix to
    reuse its cached products.
    """
    if stats is None:
        stats = GradStats(grads)
    return stats.gcd


def conflict_fraction(grads: np.ndarray, stats: GradStats | None = None) -> float:
    """Fraction of distinct task pairs whose gradients conflict (GCD > 1)."""
    if stats is None:
        stats = GradStats(grads)
    pairs, conflicts = stats.conflict_counts()
    if pairs == 0:
        return 0.0
    return conflicts / pairs


# ----------------------------------------------------------------------
# Task Conflict Intensity (Definition 2)
# ----------------------------------------------------------------------
def task_conflict_intensity(joint_risk: float, single_risk: float) -> float:
    """TCI (Definition 2): joint-training risk minus single-task risk.

    Both risks must be measured with the same lower-is-better objective
    (e.g. RMSE on the task's test split).  Positive ⇒ conflict occurred.
    """
    return float(joint_risk) - float(single_risk)


def tci_profile(
    joint_risks: Sequence[float], single_risks: Sequence[float]
) -> np.ndarray:
    """Per-task TCI vector for K tasks evaluated jointly vs singly."""
    joint = np.asarray(joint_risks, dtype=np.float64)
    single = np.asarray(single_risks, dtype=np.float64)
    if joint.shape != single.shape:
        raise ValueError("joint and single risk vectors must have the same length")
    return joint - single
