"""Task-conflict diagnostics from Section III of the paper.

Implements

- **Gradient Conflict Degree** (Definition 3):
  ``GCD(g_i, g_j) = 1 − cos φ_ij``; a gradient conflict occurs iff GCD > 1
  (i.e. the cosine similarity is negative).
- **Task Conflict Intensity** (Definition 2):
  ``TCI(T^k, F) = R_k(F(T^1..T^K)) − R_k(F(T^k))`` — the expected-risk gap
  between the jointly trained model and the single-task model.  For
  lower-is-better metrics (losses, RMSE) a *positive* TCI means joint
  training hurt the task, i.e. task conflict occurred.

These are the quantities behind Fig. 1 and Fig. 2 and behind MoCoGrad's
conflict test (Algorithm 1 line 9).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "cosine_similarity",
    "gradient_conflict_degree",
    "is_conflicting",
    "pairwise_gcd",
    "conflict_fraction",
    "task_conflict_intensity",
    "tci_profile",
]

_EPS = 1e-12


def cosine_similarity(grad_i: np.ndarray, grad_j: np.ndarray) -> float:
    """Cosine of the angle between two gradient vectors.

    Returns 0.0 when either vector is (numerically) zero, so a vanished
    gradient neither counts as conflicting nor as aligned.
    """
    grad_i = np.asarray(grad_i, dtype=np.float64).reshape(-1)
    grad_j = np.asarray(grad_j, dtype=np.float64).reshape(-1)
    norm_i = np.linalg.norm(grad_i)
    norm_j = np.linalg.norm(grad_j)
    if norm_i < _EPS or norm_j < _EPS:
        return 0.0
    return float(np.dot(grad_i, grad_j) / (norm_i * norm_j))


def gradient_conflict_degree(grad_i: np.ndarray, grad_j: np.ndarray) -> float:
    """GCD (Definition 3): ``1 − cos φ_ij`` ∈ [0, 2]."""
    return 1.0 - cosine_similarity(grad_i, grad_j)


def is_conflicting(grad_i: np.ndarray, grad_j: np.ndarray) -> bool:
    """Whether the two task gradients conflict (GCD > 1 ⇔ cos < 0)."""
    return gradient_conflict_degree(grad_i, grad_j) > 1.0


def pairwise_gcd(grads: np.ndarray) -> np.ndarray:
    """GCD matrix over all task pairs of a ``(K, d)`` gradient matrix.

    The diagonal is 0 (a task never conflicts with itself).
    """
    grads = np.asarray(grads, dtype=np.float64)
    norms = np.linalg.norm(grads, axis=1)
    safe = np.where(norms < _EPS, 1.0, norms)
    unit = grads / safe[:, None]
    cos = unit @ unit.T
    zero_mask = norms < _EPS
    cos[zero_mask, :] = 0.0
    cos[:, zero_mask] = 0.0
    np.fill_diagonal(cos, 1.0)
    return 1.0 - cos


def conflict_fraction(grads: np.ndarray) -> float:
    """Fraction of distinct task pairs whose gradients conflict (GCD > 1)."""
    gcd = pairwise_gcd(grads)
    num_tasks = gcd.shape[0]
    if num_tasks < 2:
        return 0.0
    upper = gcd[np.triu_indices(num_tasks, k=1)]
    return float(np.mean(upper > 1.0))


def task_conflict_intensity(joint_risk: float, single_risk: float) -> float:
    """TCI (Definition 2): joint-training risk minus single-task risk.

    Both risks must be measured with the same lower-is-better objective
    (e.g. RMSE on the task's test split).  Positive ⇒ conflict occurred.
    """
    return float(joint_risk) - float(single_risk)


def tci_profile(
    joint_risks: Sequence[float], single_risks: Sequence[float]
) -> np.ndarray:
    """Per-task TCI vector for K tasks evaluated jointly vs singly."""
    joint = np.asarray(joint_risks, dtype=np.float64)
    single = np.asarray(single_risks, dtype=np.float64)
    if joint.shape != single.shape:
        raise ValueError("joint and single risk vectors must have the same length")
    return joint - single
