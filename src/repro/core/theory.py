"""Theoretical guarantees of MoCoGrad (paper §IV-C) as executable checks.

The paper proves three results in the convex setting:

- **Theorem 1** (bounded calibrated gradients): with ‖g_k‖ ≤ G for all
  tasks, the calibrated aggregate satisfies ‖ĝ‖ ≤ K(1+λ)G < 2KG.
- **Theorem 2** (convergence): under L-smooth convex losses and step size
  μ ≤ 1/L the sequence of losses is non-increasing and converges.
- **Theorem 3 / Corollary 1** (regret): with decaying schedules
  μ_t = μ/t^p, λ_t = λ/t^p the regret satisfies R(T)/T → 0 and is
  O(T^max(p, 1−p, 1−3p)); p = 1/2 gives the usual O(√T) regret.

This module provides the bound formulas plus helpers that evaluate them
against actual trajectories, used by the property-based tests and by
``examples/conflict_analysis.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "calibrated_gradient_bound",
    "check_theorem1",
    "regret",
    "regret_bound",
    "corollary1_rate_exponent",
    "decaying_schedule",
    "run_convex_descent",
]


def calibrated_gradient_bound(num_tasks: int, calibration: float, grad_bound: float) -> float:
    """Theorem 1's bound: ``K (1 + λ) G`` (itself < 2KG for λ ≤ 1)."""
    if num_tasks < 1:
        raise ValueError("num_tasks must be ≥ 1")
    if not 0.0 < calibration <= 1.0:
        raise ValueError("calibration λ must be in (0, 1]")
    if grad_bound < 0:
        raise ValueError("grad_bound G must be ≥ 0")
    return num_tasks * (1.0 + calibration) * grad_bound


def check_theorem1(
    calibrated: np.ndarray, raw: np.ndarray, calibration: float
) -> bool:
    """Verify Theorem 1 on actual gradients produced by MoCoGrad.

    ``raw`` and ``calibrated`` are ``(K, d)`` matrices from one step.  Uses
    ``G = max_k ‖g_k‖`` as the empirical gradient bound.
    """
    raw = np.asarray(raw, dtype=np.float64)
    calibrated = np.asarray(calibrated, dtype=np.float64)
    grad_bound = float(np.max(np.linalg.norm(raw, axis=1)))
    aggregate = float(np.linalg.norm(calibrated.sum(axis=0)))
    bound = calibrated_gradient_bound(raw.shape[0], calibration, grad_bound)
    return aggregate <= bound + 1e-9


def regret(losses_along_path: Sequence[float], optimal_losses: Sequence[float]) -> float:
    """Regret Eq. (16): ``Σ_t L^(t)(θ^(t)) − L^(t)(θ*)``."""
    path = np.asarray(losses_along_path, dtype=np.float64)
    best = np.asarray(optimal_losses, dtype=np.float64)
    if path.shape != best.shape:
        raise ValueError("trajectories must have equal length")
    return float(np.sum(path - best))


def regret_bound(
    horizon: int,
    dim: int,
    diameter: float,
    grad_bound: float,
    num_tasks: int,
    step_size: float,
    calibration: float,
    decay_power: float = 0.5,
) -> float:
    """Theorem 3's regret bound (Eq. 17) under the Corollary 1 schedules.

    Evaluates ``Σ_i D_i²/(2μ_T) + K Σ_t Σ_i λ_t G_i D_i
    + Σ_t Σ_i (μ_t/2)(1 + K λ_t)² G_i²`` with isotropic per-dimension
    constants ``D_i = D/√dim, G_i = G/√dim`` and the decaying schedules
    ``μ_t = μ/t^p``, ``λ_t = λ/t^p``.
    """
    if horizon < 1:
        raise ValueError("horizon must be ≥ 1")
    t = np.arange(1, horizon + 1, dtype=np.float64)
    mu_t = step_size / t**decay_power
    lam_t = calibration / t**decay_power
    d_i = diameter / np.sqrt(dim)
    g_i = grad_bound / np.sqrt(dim)
    term1 = dim * d_i**2 / (2.0 * mu_t[-1])
    term2 = num_tasks * dim * g_i * d_i * float(np.sum(lam_t))
    term3 = dim * g_i**2 * float(np.sum(mu_t / 2.0 * (1.0 + num_tasks * lam_t) ** 2))
    return term1 + term2 + term3


def corollary1_rate_exponent(decay_power: float) -> float:
    """The exponent in R(T) = O(T^e) per Corollary 1: ``max(p, 1−p, 1−3p)``."""
    p = decay_power
    return max(p, 1.0 - p, 1.0 - 3.0 * p)


def decaying_schedule(base: float, horizon: int, decay_power: float = 0.5) -> np.ndarray:
    """Corollary 1 schedule ``base / t^p`` for t = 1..T."""
    t = np.arange(1, horizon + 1, dtype=np.float64)
    return base / t**decay_power


def run_convex_descent(
    task_gradient_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
    task_loss_fns: Sequence[Callable[[np.ndarray], float]],
    balancer,
    theta0: np.ndarray,
    step_size: float,
    steps: int,
) -> dict:
    """Run balanced gradient descent on an explicit convex multi-task problem.

    Used by the theory tests to verify Theorem 2 empirically: the aggregate
    loss sequence should be (eventually) non-increasing and convergent.

    Returns a dict with the parameter trajectory, per-step per-task losses
    and the aggregate loss history.
    """
    if len(task_gradient_fns) != len(task_loss_fns):
        raise ValueError("need one loss per gradient function")
    theta = np.asarray(theta0, dtype=np.float64).copy()
    balancer.reset(len(task_gradient_fns))
    trajectory = [theta.copy()]
    loss_history = []
    for _ in range(steps):
        grads = np.stack([fn(theta) for fn in task_gradient_fns])
        losses = np.array([fn(theta) for fn in task_loss_fns])
        loss_history.append(losses)
        combined = balancer.balance(grads, losses)
        theta = theta - step_size * combined
        trajectory.append(theta.copy())
    losses = np.asarray(loss_history)
    return {
        "trajectory": np.asarray(trajectory),
        "task_losses": losses,
        "total_loss": losses.sum(axis=1),
        "final_theta": theta,
    }
