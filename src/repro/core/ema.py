"""Exponential moving averages for gradient-scale normalization.

Feature-space balancing (``MTLTrainer(grad_space="features")``) hands the
balancer per-task gradients of the *shared representation* instead of the
shared parameters.  Those rows are one Jacobian application away from the
parameter gradients, and their scales drift differently per task across
steps — a task whose head temporarily saturates contributes a near-zero
row one step and an order-of-magnitude larger one a few steps later.
Norm-sensitive balancers (MGDA, IMTL, CAGrad) then chase the noise.

:class:`EMANormalizer` smooths this out the way the audio MTL systems
(RAVE, crediting EnCodec) balance their loss gradients at the decoder
output: keep an exponential moving average of each task's gradient norm
and rescale every row so the *smoothed* scales agree, while preserving
the overall gradient magnitude (the mean of the smoothed norms).

:class:`EMA` is the bare scalar/array smoother underneath, usable on its
own for any per-step series.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EMA", "EMANormalizer"]


class EMA:
    """Exponential moving average of a scalar or fixed-shape array series.

    The first :meth:`update` initializes the shadow to the observed value
    (no zero-bias warm-up), matching the RAVE/EnCodec exemplar; later
    updates apply ``shadow ← β·shadow + (1−β)·value`` in place.

    Parameters
    ----------
    beta:
        Smoothing factor in ``[0, 1)``; ``0`` tracks the raw series,
        values near ``1`` average over roughly ``1/(1−β)`` steps.
    """

    def __init__(self, beta: float = 0.999) -> None:
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1); got {beta}")
        self.beta = float(beta)
        self._shadow: np.ndarray | None = None
        #: number of ``update`` calls since construction / the last reset
        self.updates = 0

    @property
    def value(self) -> np.ndarray | None:
        """The current smoothed value, or None before the first update."""
        return self._shadow

    def update(self, values) -> np.ndarray:
        """Fold one observation in and return the updated average."""
        values = np.asarray(values, dtype=np.float64)
        if self._shadow is None:
            self._shadow = values.copy()
        else:
            if self._shadow.shape != values.shape:
                raise ValueError(
                    f"EMA was initialized with shape {self._shadow.shape} "
                    f"but received {values.shape}"
                )
            self._shadow *= self.beta
            self._shadow += (1.0 - self.beta) * values
        self.updates += 1
        return self._shadow

    def reset(self) -> None:
        """Forget the shadow; the next update re-initializes it."""
        self._shadow = None
        self.updates = 0

    def __repr__(self) -> str:
        return f"EMA(beta={self.beta}, updates={self.updates})"


class EMANormalizer:
    """Rescale per-task gradient rows to a common smoothed norm.

    Given a ``(K, d)`` gradient matrix, tracks an :class:`EMA` of the K
    row norms and scales each row by ``target / ema_norm_k`` where
    ``target`` is the mean of the smoothed norms — tasks keep their
    directions, persistent scale imbalances are evened out, and the
    overall gradient magnitude is preserved.  All-zero rows stay zero
    (their smoothed norm only decays, and scaling zero is zero).

    State is shaped ``(K,)`` — unlike the d-shaped balancer state it is
    insensitive to the gradient dimension, so it survives a parameter- vs
    feature-space switch (the trainer still forbids that switch for
    momentum-carrying balancers).
    """

    def __init__(self, beta: float = 0.999, eps: float = 1e-12) -> None:
        self.ema = EMA(beta)
        self.eps = float(eps)

    def normalize(self, grads: np.ndarray, norms: np.ndarray | None = None) -> np.ndarray:
        """Scale ``grads`` rows in place; returns the same array.

        ``norms`` may pass precomputed row norms (e.g. from a
        :class:`~repro.core.gradstats.GradStats`) to skip the O(K·d)
        reduction.
        """
        grads = np.asarray(grads)
        if grads.ndim != 2:
            raise ValueError(f"grads must be (K, d); got shape {grads.shape}")
        if norms is None:
            norms = np.sqrt(np.einsum("kd,kd->k", grads, grads))
        smoothed = self.ema.update(norms)
        target = float(smoothed.mean())
        scale = target / (smoothed + self.eps)
        grads *= scale[:, None]
        return grads

    def reset(self) -> None:
        """Forget the norm history; the next call re-initializes it."""
        self.ema.reset()

    def __repr__(self) -> str:
        return f"EMANormalizer(beta={self.ema.beta}, updates={self.ema.updates})"
