"""MoCoGrad — Momentum-calibrated Conflicting Gradients (the paper's §IV).

Algorithm 1, reproduced:

    for each task i:
        g_i = ∇_θ L_i
        for each task j ≠ i in random order:
            if GCD(g_i, g_j) > 1:                       # Eq. (4), conflict
                ĝ_i = g_i + λ · (‖g_j‖ / ‖m_j^(t−1)‖) · m_j^(t−1)   # Eq. (8)
            update m_j^(t) = β₁ m_j^(t−1) + (1−β₁) g_j              # Eq. (9)
    update parameters with g^new = Σ_i ĝ_i

Fidelity notes (also recorded in DESIGN.md):

- *Accumulation.*  The listing overwrites ``ĝ_i`` per conflicting partner,
  but Theorem 1/3 expand ``ĝ_i = g_i + λ Σ_j (‖g_j‖/‖m_j‖)·m_j`` — i.e. the
  calibration terms accumulate over all conflicting partners.  This
  implementation accumulates (the two coincide for K = 2, the setting of the
  convergence theory).
- *Momentum update cadence.*  The listing updates ``m_j`` inside the loop
  over i, i.e. K−1 times per optimization step.  ``momentum_update``
  selects ``"per_step"`` (default: each task's momentum updates exactly once
  per step, identical for K = 2) or ``"per_pair"`` (the literal listing).
- *Momentum source.*  Eq. (9) writes ``ĝ_j`` while Algorithm 1 line 12
  writes the raw ``g_j``; ``momentum_source`` selects ``"raw"`` (default,
  the listing) or ``"calibrated"`` (Eq. 9 as printed).
- *Zero momentum.*  At t = 0 all momenta are zero and Eq. (8) divides by
  ‖m_j‖; calibration is skipped for a partner with (numerically) zero
  momentum — the first step therefore reduces to plain joint training.

Kernels: under ``momentum_update="per_step"`` every calibration reads the
step-(t−1) momentum and the raw gradients, so the double loop over ordered
pairs commutes — the whole of Eq. (8) collapses to one masked matrix
product (``pairwise_mode="vectorized"``, the default):

    ĝ = g + λ · C · (s ⊙ m),   C[i,j] = conflict(i,j) ∧ ‖m_j‖ ≥ ε,
                               s_j    = ‖g_j‖ / ‖m_j‖,

with the conflict mask and norms read from the shared per-step
:class:`~repro.core.gradstats.GradStats` cache and all telemetry counters
derived from mask sums.  ``pairwise_mode="loop"`` keeps the original
per-pair loop as the reference oracle; ``momentum_update="per_pair"``
is inherently sequential (momentum mutates mid-loop) and always runs the
loop kernel.
"""

from __future__ import annotations

import numpy as np

from .balancer import GradientBalancer, register_balancer
from .conflict import _cosine_pair
from .gradstats import GradStats

__all__ = ["MoCoGrad"]

_EPS = 1e-12


@register_balancer("mocograd")
class MoCoGrad(GradientBalancer):
    """Momentum-calibrated conflicting-gradient balancer.

    Parameters
    ----------
    calibration:
        λ ∈ (0, 1] — strength of the momentum calibration term (Eq. 8).
        The paper's Fig. 9 sweep finds λ = 0.12 optimal on Office-Home.
    beta1:
        β₁ ∈ [0, 1) — exponential decay rate of the per-task first moment
        (Eq. 9); the paper uses the Adam-typical 0.9.
    momentum_update:
        ``"per_step"`` or ``"per_pair"`` — see the module docstring.
    momentum_source:
        ``"raw"`` (Algorithm 1) or ``"calibrated"`` (Eq. 9) gradients feed
        the momentum update.
    calibration_decay:
        Optional p > 0 enabling Corollary 1's schedule λ_t = λ/t^p — the
        setting under which the O(√T) regret bound is proven (p = 1/2).
        ``None`` (default) keeps λ constant, as in the paper's experiments.
    pairwise_mode:
        ``"vectorized"`` (default) computes Eq. (8) as one masked matrix
        product over the shared GradStats cache; ``"loop"`` runs the
        original per-pair reference loop.  Only affects ``per_step``
        momentum updates; ``per_pair`` always loops.
    seed:
        Seeds the random partner-ordering required by Algorithm 1 line 7.
    """

    def __init__(
        self,
        calibration: float = 0.12,
        beta1: float = 0.9,
        momentum_update: str = "per_step",
        momentum_source: str = "raw",
        calibration_decay: float | None = None,
        pairwise_mode: str = "vectorized",
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed, pairwise_mode=pairwise_mode)
        if not 0.0 < calibration <= 1.0:
            raise ValueError(f"calibration λ must be in (0, 1]; got {calibration}")
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1); got {beta1}")
        if momentum_update not in ("per_step", "per_pair"):
            raise ValueError("momentum_update must be 'per_step' or 'per_pair'")
        if momentum_source not in ("raw", "calibrated"):
            raise ValueError("momentum_source must be 'raw' or 'calibrated'")
        if calibration_decay is not None and calibration_decay <= 0:
            raise ValueError("calibration_decay must be positive (or None)")
        self.calibration_decay = calibration_decay
        self.calibration = calibration
        self.beta1 = beta1
        self.momentum_update = momentum_update
        self.momentum_source = momentum_source
        self._momentum: np.ndarray | None = None
        self.step_count = 0

    # ------------------------------------------------------------------
    def reset(self, num_tasks: int) -> None:
        super().reset(num_tasks)
        self._momentum = None
        self.step_count = 0

    @property
    def momentum(self) -> np.ndarray | None:
        """The per-task first-moment estimates ``m`` of shape ``(K, d)``."""
        return self._momentum

    # ------------------------------------------------------------------
    def calibrate(self, grads: np.ndarray, stats: GradStats | None = None) -> np.ndarray:
        """Return the calibrated per-task gradients ``ĝ`` (``(K, d)``).

        Exposed separately from :meth:`balance` so analysis code (and the
        Theorem 1 bound test) can inspect per-task calibrated gradients.
        Updates the internal momentum state.  ``stats`` may carry an
        existing :class:`GradStats` over ``grads`` (as :meth:`balance`
        does); one is built on demand otherwise.
        """
        grads = np.asarray(grads, dtype=np.float64)
        num_tasks = grads.shape[0]
        if self._momentum is None:
            self._momentum = np.zeros_like(grads)
        elif self._momentum.shape != grads.shape:
            # Silently zero-resetting here would invalidate Eq. (9)'s
            # momentum history mid-run without any signal; make the caller
            # decide.
            self.telemetry.counter("mocograd_momentum_shape_mismatch_total").inc()
            raise ValueError(
                f"gradient matrix shape {grads.shape} does not match momentum state "
                f"{self._momentum.shape}; the task count or shared-parameter set "
                "changed mid-run — call reset() to start a fresh momentum history"
            )
        if self.telemetry.enabled:
            # λ in effect for this step (step_count has not advanced yet).
            self.telemetry.gauge("mocograd_lambda").set(self.current_calibration())
        previous_momentum = self._momentum

        if self.momentum_update == "per_pair":
            # Literal Algorithm 1: momentum mutates while later tasks i are
            # still being calibrated — inherently sequential, always a loop.
            calibrated = grads.copy()
            momentum = previous_momentum.copy()
            for i in range(num_tasks):
                partners = [j for j in range(num_tasks) if j != i]
                self.rng.shuffle(partners)
                for j in partners:
                    momentum_j = momentum[j]
                    self._maybe_calibrate(calibrated, grads, i, j, momentum_j)
                    source = calibrated[j] if self.momentum_source == "calibrated" else grads[j]
                    momentum[j] = self.beta1 * momentum_j + (1.0 - self.beta1) * source
            self._momentum = momentum
        else:
            # per_step: all calibrations read the step-(t−1) momentum; each
            # task's momentum then updates exactly once.
            if self._use_vectorized(num_tasks):
                if stats is None or stats.grads is not grads:
                    stats = GradStats(grads)
                calibrated = self._calibrate_per_step_vectorized(
                    grads, stats, previous_momentum
                )
            else:
                calibrated = grads.copy()
                for i in range(num_tasks):
                    partners = [j for j in range(num_tasks) if j != i]
                    self.rng.shuffle(partners)
                    for j in partners:
                        self._maybe_calibrate(calibrated, grads, i, j, previous_momentum[j])
            source = calibrated if self.momentum_source == "calibrated" else grads
            self._momentum = self.beta1 * previous_momentum + (1.0 - self.beta1) * source

        self.step_count += 1
        if self.telemetry.enabled:
            for task_index, norm in enumerate(np.linalg.norm(self._momentum, axis=1)):
                self.telemetry.gauge("mocograd_momentum_norm", task=str(task_index)).set(
                    float(norm)
                )
        return calibrated

    def _calibrate_per_step_vectorized(
        self,
        grads: np.ndarray,
        stats: GradStats,
        previous_momentum: np.ndarray,
    ) -> np.ndarray:
        """Eq. (8) for all ordered pairs as one masked matrix product.

        Valid because per-step calibration is order-free: every term reads
        raw gradients and step-(t−1) momentum, and accumulation commutes.
        Telemetry counter values are derived from mask sums and match the
        reference loop's per-pair increments exactly.
        """
        conflict = stats.conflict_mask  # (K, K) ordered pairs, diag False
        conflicts = int(conflict.sum())
        telemetry = self.telemetry
        if conflicts:
            telemetry.counter("mocograd_conflicts_total").inc(conflicts)
        momentum_norms = np.linalg.norm(previous_momentum, axis=1)
        live = momentum_norms >= _EPS
        # Eq. (8) is undefined for a zero-momentum partner: those columns
        # of the conflict mask are zeroed and counted as skips.
        effective = conflict & live[None, :]
        applied = int(effective.sum())
        skipped = conflicts - applied
        if skipped:
            telemetry.counter("mocograd_skipped_zero_momentum_total").inc(skipped)
        if applied == 0:
            return grads.copy()
        telemetry.counter("mocograd_calibrations_total").inc(applied)
        scale = np.zeros_like(momentum_norms)
        np.divide(stats.norms, momentum_norms, out=scale, where=live)
        return grads + self.current_calibration() * (
            effective.astype(np.float64) @ (scale[:, None] * previous_momentum)
        )

    def dynamics(self) -> dict:
        """Flight-recorder hook: λ in effect plus per-task momentum norms.

        ``lambda`` follows :meth:`current_calibration` (so Corollary 1's
        decay schedule is visible step by step); ``momentum_norms`` are
        ``‖m_k^{(t)}‖`` *after* this step's Eq. (9) update.
        """
        sample: dict = {"lambda": self.current_calibration()}
        if self._momentum is not None:
            sample["momentum_norms"] = [
                float(n) for n in np.linalg.norm(self._momentum, axis=1)
            ]
        return sample

    def current_calibration(self) -> float:
        """λ at the current step (λ/t^p under Corollary 1's schedule)."""
        if self.calibration_decay is None:
            return self.calibration
        t = max(self.step_count, 0) + 1
        return self.calibration / t**self.calibration_decay

    def _maybe_calibrate(
        self,
        calibrated: np.ndarray,
        grads: np.ndarray,
        i: int,
        j: int,
        momentum_j: np.ndarray,
    ) -> None:
        """Apply Eq. (8) to task ``i`` against partner ``j`` if conflicting."""
        if _cosine_pair(grads[i], grads[j]) >= 0.0:  # GCD ≤ 1: no conflict
            return
        telemetry = self.telemetry
        telemetry.counter("mocograd_conflicts_total").inc()
        momentum_norm = np.linalg.norm(momentum_j)
        if momentum_norm < _EPS:
            # Eq. (8) undefined for zero momentum; skip calibration
            telemetry.counter("mocograd_skipped_zero_momentum_total").inc()
            return
        grad_norm = np.linalg.norm(grads[j])
        calibrated[i] += self.current_calibration() * (grad_norm / momentum_norm) * momentum_j
        telemetry.counter("mocograd_calibrations_total").inc()

    # ------------------------------------------------------------------
    def balance(self, grads: np.ndarray, losses: np.ndarray) -> np.ndarray:
        """Algorithm 1: calibrate all tasks, return ``g^new = Σ_i ĝ_i``."""
        grads, _ = self._check_inputs(grads, losses)
        calibrated = self.calibrate(grads, stats=self._stats)
        return calibrated.sum(axis=0)

    def __repr__(self) -> str:
        return (
            f"MoCoGrad(calibration={self.calibration}, beta1={self.beta1}, "
            f"momentum_update={self.momentum_update!r}, momentum_source={self.momentum_source!r})"
        )
