"""Single-task learning (STL) — the baseline row of every table.

Trains one independent model per task (the benchmark's
``build_stl_model``) and evaluates it, providing both the STL rows of
Tables I–IV and the single-task risks that TCI (Definition 2) and ΔM
(Eq. 27) are measured against.
"""

from __future__ import annotations

import numpy as np

from ..balancers.equal import EqualWeighting
from ..data.base import MULTI_INPUT, Benchmark
from .trainer import MTLTrainer

__all__ = ["train_stl", "train_stl_all"]


def train_stl(
    benchmark: Benchmark,
    task_name: str,
    epochs: int,
    batch_size: int,
    lr: float = 1e-3,
    optimizer: str = "adam",
    seed: int = 0,
    max_steps_per_epoch: int | None = None,
) -> dict[str, float]:
    """Train one single-task model; return its test metrics."""
    task = benchmark.task(task_name)
    rng = np.random.default_rng(seed)
    model = benchmark.build_stl_model(task_name, rng)
    # A single-task model is a one-task MTLModel: reuse the MTL trainer
    # with the trivial balancer (balancing a single gradient is a no-op).
    trainer = MTLTrainer(
        model,
        [task],
        EqualWeighting(),
        mode=benchmark.mode,
        optimizer=optimizer,
        lr=lr,
        seed=seed,
    )
    if benchmark.mode == MULTI_INPUT:
        train_data = {task_name: benchmark.train[task_name]}
        test_data = {task_name: benchmark.test[task_name]}
    else:
        train_data = benchmark.train
        test_data = benchmark.test
    trainer.fit(train_data, epochs, batch_size, max_steps_per_epoch=max_steps_per_epoch)
    return trainer.evaluate(test_data)[task_name]


def train_stl_all(
    benchmark: Benchmark,
    epochs: int,
    batch_size: int,
    lr: float = 1e-3,
    optimizer: str = "adam",
    seed: int = 0,
    max_steps_per_epoch: int | None = None,
) -> dict[str, dict[str, float]]:
    """STL metrics for every task: ``{task: {metric: value}}``."""
    return {
        name: train_stl(
            benchmark,
            name,
            epochs,
            batch_size,
            lr=lr,
            optimizer=optimizer,
            seed=seed,
            max_steps_per_epoch=max_steps_per_epoch,
        )
        for name in benchmark.task_names
    }
