"""``repro.training`` — optimization loops for MTL and STL."""

from .callbacks import BestCheckpoint, EarlyStopping
from .evaluation import collect_outputs, evaluate_model
from .history import History
from .stl import train_stl, train_stl_all
from .trainer import MTLTrainer

__all__ = [
    "MTLTrainer",
    "History",
    "evaluate_model",
    "collect_outputs",
    "train_stl",
    "train_stl_all",
    "EarlyStopping",
    "BestCheckpoint",
]
