"""Training callbacks: early stopping and best-checkpoint tracking.

Small utilities a downstream user of the library needs for real training
runs; the experiment harness keeps fixed epoch budgets for comparability
with the paper's protocol.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EarlyStopping", "BestCheckpoint"]


class EarlyStopping:
    """Stop when a monitored value stops improving.

    ``mode`` is ``"min"`` (losses, errors) or ``"max"`` (AUC, accuracy).
    Call :meth:`update` once per epoch; it returns True when training
    should stop.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0, mode: str = "min") -> None:
        if patience < 1:
            raise ValueError("patience must be ≥ 1")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: float | None = None
        self.stale_epochs = 0

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def update(self, value: float) -> bool:
        """Record one epoch's monitored value; True ⇒ stop now."""
        if not np.isfinite(value):
            self.stale_epochs += 1
        elif self._improved(value):
            self.best = value
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        return self.stale_epochs >= self.patience


class BestCheckpoint:
    """Keep the best model state seen so far (by a monitored value)."""

    def __init__(self, model, mode: str = "min") -> None:
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.model = model
        self.mode = mode
        self.best: float | None = None
        self._state: dict | None = None

    def update(self, value: float) -> bool:
        """Snapshot the model if ``value`` is the best so far."""
        improved = (
            self.best is None
            or (self.mode == "min" and value < self.best)
            or (self.mode == "max" and value > self.best)
        )
        if improved and np.isfinite(value):
            self.best = value
            self._state = self.model.state_dict()
        return improved

    def restore(self) -> None:
        """Load the best snapshot back into the model."""
        if self._state is None:
            raise RuntimeError("no checkpoint recorded yet")
        self.model.load_state_dict(self._state)
