"""Multi-task trainer with per-task gradient collection and balancing.

Reproduces the LibMTL-style optimization loop the paper runs on:

1. Collect the per-task gradients over the *shared* parameters into a
   ``(K, d)`` matrix (``grad_space="parameters"``).
2. Feed the gradient matrix plus the loss values to the gradient balancer
   (MoCoGrad or any baseline).
3. Write the combined gradient back into the shared parameters, keep the
   task-specific gradients untouched, and take one optimizer step.

Gradient collection (step 1) runs in one of two backward modes:

- ``backward_mode="multi_root"`` (default) — ONE topological sort and ONE
  traversal over the union graph of all K task losses
  (:func:`repro.nn.tensor.backward_multi`), written straight into a
  preallocated trainer-owned ``(K, d)`` workspace.  Numerically identical
  to the per-task mode (same ``grad_fn`` calls, per-root gradient slots).
- ``backward_mode="per_task"`` — the literal LibMTL loop: K full backward
  passes per step, one per task loss.  Kept as the reference oracle; this
  is the cost the paper's §VI-C / Fig. 8 identify as the bottleneck of
  gradient-manipulation methods.

The paper's §VI-C speedup — balancing *feature-level* gradients (w.r.t. the
shared representation z) so the shared trunk is back-propagated only once —
is the second *gradient space*, ``grad_space="features"``.  It works with
every registered balancer and every single-input architecture exposing
:meth:`~repro.arch.base.MTLModel.shared_features` (HPS, MMoE, CGC,
CrossStitch), turns the per-step balancing cost from O(K·d) into
O(K·d_feat), and composes with ``accumulate_steps`` (micro-step trunk
graphs are retained and back-propagated once at the window boundary).
The legacy ``grad_source="params"|"features"`` spelling maps onto
``grad_space`` with a one-shot :class:`DeprecationWarning`.

Observability
-------------
Every step is traced with nested :mod:`repro.obs` spans::

    step                      whole optimization step
    ├── forward               all task forwards (losses computed)
    ├── backward              backward-only wall-clock (Fig. 8's quantity)
    │   └── task_backward     one per task, labelled task=<name>
    ├── balance               balancer.balance (conflict counters inside)
    ├── backward_shared       trunk backprop (grad_space="features" only)
    └── optimizer_step        parameter update

In ``per_task`` mode each ``task_backward`` span wraps that task's full
backward pass.  In ``multi_root`` mode the union-graph walk is not
separable by task, so each ``task_backward`` span wraps one root's
*accumulation* into the gradient workspace; the walk itself is the
remainder of the enclosing ``backward`` span.

plus ``train_steps_total`` / ``train_epochs_total`` counters and per-task
``train_loss`` gauges.  The legacy ``step_seconds`` list and
``backward_seconds_total`` scalar survive as *deprecated* properties backed
by span data — note ``backward_seconds_total`` now honestly reports
backward-only time (it previously accumulated whole steps).

The flight recorder builds on the same spans: ``profile=`` exports the
step timeline as Chrome ``trace_event`` JSON and ``record_dynamics=``
keeps a bounded per-step series of conflict geometry (GCD, cosine
extrema, grad norms) and balancer state (MoCoGrad λ / momentum norms) —
see DESIGN.md ("Flight recorder").
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Mapping, Sequence

import numpy as np

from ..arch.base import MTLModel
from ..core.balancer import GradientBalancer
from ..core.ema import EMANormalizer
from ..data.base import (
    MULTI_INPUT,
    SINGLE_INPUT,
    ArrayDataset,
    DataLoader,
    TaskSpec,
    batch_index_iter,
)
from ..data.streaming import StreamingDataset, StreamingLoader
from ..nn.arena import ParameterArena
from ..nn.module import Parameter
from ..nn.optim import SGD, Adam, AdaGrad, Optimizer, RMSProp
from ..nn.tensor import Tensor, backward_multi
from ..nn.utils import grad_vector, grad_vector_from_slots, set_grad_from_vector
from ..obs import NULL_TELEMETRY, DynamicsRecorder, Profiler, Telemetry, default_sinks
from ..parallel import (
    ArenaDims,
    ParallelExecutor,
    SharedArenaBuffers,
    WorkerSpec,
    arena_order,
)
from .history import History

__all__ = ["MTLTrainer", "GRAD_SPACES"]

#: Valid gradient spaces: balance per-task gradients of the shared
#: *parameters* (the ``(K, d)`` matrix) or of the shared *representation*
#: (the ``(K, d_feat)`` matrix, one trunk backprop per step).
GRAD_SPACES = ("parameters", "features")

#: Legacy ``grad_source=`` spellings and the spaces they map onto.
_LEGACY_GRAD_SOURCES = {"params": "parameters", "features": "features"}

_grad_source_warned = False


def _warn_grad_source_once() -> None:
    """One-shot deprecation for the legacy ``grad_source=`` kwarg."""
    global _grad_source_warned
    if _grad_source_warned:
        return
    _grad_source_warned = True
    warnings.warn(
        "the grad_source= trainer option is deprecated; pass "
        "grad_space='parameters' or grad_space='features' instead",
        DeprecationWarning,
        stacklevel=4,
    )


def _resolve_grad_space(grad_space: str | None, grad_source: str | None) -> str:
    """Fold the deprecated ``grad_source`` spelling into ``grad_space``."""
    if grad_source is not None:
        if grad_space is not None:
            raise ValueError(
                "pass either grad_space or the deprecated grad_source, not both"
            )
        try:
            resolved = _LEGACY_GRAD_SOURCES[grad_source]
        except KeyError:
            raise ValueError("grad_source must be 'params' or 'features'") from None
        _warn_grad_source_once()
        return resolved
    if grad_space is None:
        return "parameters"
    if grad_space not in GRAD_SPACES:
        raise ValueError(f"grad_space must be one of {GRAD_SPACES}; got {grad_space!r}")
    return grad_space


def _make_optimizer(
    name: str,
    parameters: list[Parameter] | ParameterArena,
    lr: float,
    step_mode: str = "auto",
) -> Optimizer:
    name = name.lower()
    if name == "adam":
        return Adam(parameters, lr=lr, step_mode=step_mode)
    if name == "sgd":
        return SGD(parameters, lr=lr, step_mode=step_mode)
    if name == "sgdm":
        return SGD(parameters, lr=lr, momentum=0.9, step_mode=step_mode)
    if name == "adagrad":
        return AdaGrad(parameters, lr=lr, step_mode=step_mode)
    if name == "rmsprop":
        return RMSProp(parameters, lr=lr, step_mode=step_mode)
    raise ValueError(f"unknown optimizer {name!r}; use adam, sgd, sgdm, adagrad or rmsprop")


def _build_arena(model: MTLModel, shared: list[Parameter]) -> ParameterArena | None:
    """Pack the model into one arena with the shared parameters as a prefix.

    The ordering matters: with the shared partition contiguous at offset 0,
    the trainer's workspace fills and the post-balance scatter hit the
    zero-copy segment fast path in :mod:`repro.nn.utils`.  If the model is
    already packed (e.g. a second trainer over the same model), the existing
    arena is reused when it covers exactly the model's parameters; a partial
    or foreign packing falls back to the arena-less path rather than
    detaching live views.
    """
    shared_ids = {id(p) for p in shared}
    ordered = list(shared) + [p for p in model.parameters() if id(p) not in shared_ids]
    if not ordered:
        return None
    existing = next((p._arena for p in ordered if p._arena is not None), None)
    if existing is not None:
        if all(p._arena is existing for p in ordered) and len(existing.parameters) == len(
            ordered
        ):
            return existing
        return None
    return ParameterArena(ordered)


class MTLTrainer:
    """Trains an :class:`~repro.arch.base.MTLModel` under a gradient balancer.

    Parameters
    ----------
    model, tasks, balancer:
        The architecture, the task specifications (order defines the task
        axis of the gradient matrix) and the balancing strategy.
    mode:
        ``"single_input"`` (one batch feeds all tasks) or ``"multi_input"``
        (one batch per task per step).
    grad_space:
        ``"parameters"`` (default) balances the ``(K, d)`` matrix of
        per-task shared-parameter gradients.  ``"features"`` balances the
        ``(K, d_feat)`` matrix of per-task gradients of the shared
        representation ``z`` (the paper's §VI-C mode) and back-propagates
        the trunk once on the balanced direction — O(K·d_feat) balancing
        instead of O(K·d).  Works with every balancer and every
        single-input architecture implementing
        :meth:`~repro.arch.base.MTLModel.shared_features`.  Note that
        stateful balancers (MoCoGrad, GradVac) shape their state to
        d_feat, which follows the batch shape — keep batch sizes fixed
        (or use a stateless balancer) when the loader yields a partial
        trailing batch.  The legacy ``grad_source="params"|"features"``
        kwarg still works, with a one-shot deprecation warning.
    feature_ema:
        Optional EMA smoothing factor in ``[0, 1)`` enabling a
        :class:`~repro.core.ema.EMANormalizer` over the feature-gradient
        rows (``grad_space="features"`` only): per-task rows are rescaled
        so their *smoothed* norms agree before balancing, keeping task
        scales comparable across steps.  ``None`` (default) applies no
        normalization — the feature path then matches the historical
        behavior exactly.
    backward_mode:
        ``"multi_root"`` (default: one union-graph walk collects all task
        gradients) or ``"per_task"`` (the reference K-backward-passes
        loop).  Both produce bit-comparable gradients; see the module
        docstring.
    optimizer / lr:
        Optimizer name (adam, sgd, sgdm, adagrad, rmsprop) and learning
        rate; the paper uses Adam at 1e-4 (recommendation/vision) or 3e-3
        (QM9).
    use_arena / step_mode:
        ``use_arena=True`` (default) packs the model's parameters into one
        contiguous :class:`~repro.nn.arena.ParameterArena` — shared
        partition first, task-specific partitions after — so gradient
        flatten/scatter are zero-copy and ``zero_grad`` is a single buffer
        fill.  ``step_mode`` is forwarded to the optimizer: ``"auto"``
        (default; the fused flat-vector step when an arena is active),
        ``"flat"`` or ``"loop"`` (the per-parameter reference oracle —
        trajectories are bitwise identical to the flat path).
    seed:
        Seeds batch order; balancer randomness is seeded separately through
        the balancer's own ``seed``.
    track_conflicts:
        When True, record the mean pairwise GCD and the conflicting-pair
        fraction of the per-task gradients at every step
        (``trainer.conflict_stats``) — the live version of the paper's
        Section III diagnostics.
    telemetry:
        A :class:`repro.obs.Telemetry` instance, or None to create a
        private one attached to the process-wide default sinks (installed
        by ``python -m repro --telemetry``).  Pass
        ``repro.obs.NULL_TELEMETRY`` to disable instrumentation entirely.
    profile:
        Flight-recorder timeline profiling.  A path string enables
        profiling and exports a Chrome ``trace_event`` JSON there when
        :meth:`fit` completes (load it in ``chrome://tracing`` or
        Perfetto); a :class:`repro.obs.Profiler` instance attaches as-is
        (export it yourself).  Requires enabled telemetry.
    accumulate_steps:
        GCond-style accumulate-then-resolve window ``W``.  ``1`` (default)
        resolves conflicts every step — bit-identical to the historical
        per-step path.  ``W > 1`` sums the per-task gradient matrices and
        losses over ``W`` micro-steps, then calls
        :meth:`~repro.core.balancer.GradientBalancer.resolve_accumulated`
        *once* (so stateful balancers — MoCoGrad momentum, DWA history —
        advance once per resolve) and takes one optimizer step on the
        window-mean gradients.  Works with every balancer, in both
        gradient spaces, and in parallel mode.  With
        ``grad_space="features"`` each micro-step's trunk graph is
        retained and back-propagated at the window boundary (the
        window-mean chain rule), so memory grows with ``W`` retained
        forward graphs; a mid-window feature-dimension change (batch-size
        change) discards the open window with a ``RuntimeWarning``.
    parallel:
        ``0`` (default) trains in-process.  ``N ≥ 1`` creates the trainer's
        arena over a :mod:`repro.parallel` shared-memory block and, inside
        :meth:`fit`, runs each batch as ``N`` worker processes over
        deterministic contiguous shards with a weighted flat-sum reduce —
        the same batch stream as sequential training, matching it ≤ 1e-12.
        Requires ``model_factory``, single-input mode,
        ``grad_space="parameters"``, ``backward_mode="multi_root"`` and
        ``use_arena=True``.  Call :meth:`close` (or use the trainer as a
        context manager) to release the shared-memory block.
    model_factory:
        Zero-argument callable rebuilding the model *structure* in each
        worker (same parameters, same order; values are adopted from the
        shared buffer).  Must be picklable under the ``spawn`` start
        method.  Required when ``parallel ≥ 1``.
    start_method / worker_telemetry / step_timeout:
        Parallel-mode knobs: the multiprocessing start method (default
        ``fork`` where available, else ``spawn``); a base JSONL path giving
        every worker its own telemetry sink (``run.jsonl`` →
        ``run.worker<i>.jsonl``; merge with ``repro report``); and the
        per-step barrier timeout in seconds before a silent worker is
        declared crashed.
    record_dynamics:
        Per-step conflict-dynamics recording into a bounded
        :class:`repro.obs.DynamicsRecorder` (``trainer.recorder``):
        ``True`` for the default 1024-sample stride recorder, an int for
        a custom capacity, or a preconfigured recorder instance.  Each
        step samples the balancer's :class:`~repro.core.gradstats.GradStats`
        (per-task grad norms, pairwise GCD, cosine extrema) plus the
        balancer's :meth:`~repro.core.balancer.GradientBalancer.dynamics`
        state (MoCoGrad: λ, momentum norms) and per-task losses;
        :meth:`fit` flushes the retained samples to the telemetry sinks
        as ``dynamics`` events (``repro report --dynamics`` renders them).
    """

    def __init__(
        self,
        model: MTLModel,
        tasks: Sequence[TaskSpec],
        balancer: GradientBalancer,
        mode: str = SINGLE_INPUT,
        grad_space: str | None = None,
        backward_mode: str = "multi_root",
        optimizer: str = "adam",
        lr: float = 1e-3,
        seed: int | None = None,
        track_conflicts: bool = False,
        telemetry: Telemetry | None = None,
        use_arena: bool = True,
        step_mode: str = "auto",
        profile: str | Profiler | None = None,
        record_dynamics: bool | int | DynamicsRecorder = False,
        accumulate_steps: int = 1,
        parallel: int = 0,
        model_factory: Callable[[], MTLModel] | None = None,
        start_method: str | None = None,
        worker_telemetry: str | None = None,
        step_timeout: float = 120.0,
        feature_ema: float | None = None,
        grad_source: str | None = None,
    ) -> None:
        if mode not in (SINGLE_INPUT, MULTI_INPUT):
            raise ValueError(f"mode must be {SINGLE_INPUT!r} or {MULTI_INPUT!r}")
        grad_space = _resolve_grad_space(grad_space, grad_source)
        if grad_space == "features" and mode != SINGLE_INPUT:
            raise ValueError("feature-level gradients require single-input MTL")
        if backward_mode not in ("multi_root", "per_task"):
            raise ValueError("backward_mode must be 'multi_root' or 'per_task'")
        if accumulate_steps < 1:
            raise ValueError(f"accumulate_steps must be ≥ 1; got {accumulate_steps}")
        if feature_ema is not None and grad_space != "features":
            raise ValueError("feature_ema requires grad_space='features'")
        if parallel < 0:
            raise ValueError(f"parallel must be ≥ 0; got {parallel}")
        if parallel:
            if model_factory is None:
                raise ValueError("parallel training requires a model_factory")
            if mode != SINGLE_INPUT:
                raise ValueError("parallel training requires single-input mode")
            if grad_space != "parameters":
                raise ValueError("parallel training requires grad_space='parameters'")
            if backward_mode != "multi_root":
                raise ValueError("parallel training requires backward_mode='multi_root'")
            if not use_arena:
                raise ValueError("parallel training requires use_arena=True")
        model_tasks = set(model.task_names)
        spec_tasks = {task.name for task in tasks}
        if model_tasks != spec_tasks:
            raise ValueError(f"model tasks {model_tasks} do not match specs {spec_tasks}")
        self.model = model
        self.tasks = list(tasks)
        self.balancer = balancer
        self.mode = mode
        self.grad_space = grad_space
        #: EMA norm-normalizer over the feature-gradient rows, or None
        self.feature_normalizer = (
            EMANormalizer(beta=feature_ema) if feature_ema is not None else None
        )
        self.backward_mode = backward_mode
        self.accumulate_steps = int(accumulate_steps)
        self.parallel = int(parallel)
        self.model_factory = model_factory
        self._start_method = start_method
        self._worker_telemetry = worker_telemetry
        self._step_timeout = step_timeout
        #: parent-owned shared-memory block (parallel mode), or None
        self.shared_buffers: SharedArenaBuffers | None = None
        #: the contiguous parameter arena (None when ``use_arena=False`` or
        #: the model's existing packing could not be reused)
        if self.parallel:
            # Parallel mode packs straight into the shared block so the
            # fused optimizer step doubles as the parameter broadcast.
            ordered, shared = arena_order(model)
            dims = ArenaDims(
                num_workers=self.parallel,
                num_tasks=len(self.tasks),
                dim_total=sum(p.size for p in ordered),
                dim_shared=sum(p.size for p in shared),
            )
            self.shared_buffers = SharedArenaBuffers.create(dims)
            try:
                self.arena = ParameterArena(
                    ordered,
                    data=self.shared_buffers.params,
                    grad=self.shared_buffers.parent_grad,
                )
            except Exception:
                self.shared_buffers.close()
                self.shared_buffers = None
                raise
        else:
            self.arena = _build_arena(model, model.shared_parameters()) if use_arena else None
        # Flat view of the shared partition's gradients (the zero-copy
        # (d_shared,) slice the balancer path reads/writes), when contiguous.
        self._shared_grad_view = (
            self.arena.grad_segment(model.shared_parameters()) if self.arena is not None else None
        )
        self.optimizer = _make_optimizer(
            optimizer, self.arena if self.arena is not None else model.parameters(), lr, step_mode
        )
        self.rng = np.random.default_rng(seed)
        self.balancer.reset(len(self.tasks))
        self.history = History([task.name for task in self.tasks])
        self.step_count = 0
        self.track_conflicts = track_conflicts
        self.telemetry = telemetry if telemetry is not None else Telemetry(sinks=default_sinks())
        self.balancer.telemetry = self.telemetry
        self._step_labels = {"method": self.balancer.name, "mode": self.mode}
        #: Chrome-trace profiler (``profile=`` kwarg), or None.
        self.profiler: Profiler | None = None
        self._profile_path: str | None = None
        if profile is not None:
            if isinstance(profile, Profiler):
                self.profiler = profile
            else:
                self._profile_path = str(profile)
                self.profiler = Profiler()
            self.profiler.attach(self.telemetry)
        #: bounded per-step dynamics recorder (``record_dynamics=``), or None.
        self.recorder: DynamicsRecorder | None = None
        if record_dynamics:
            if isinstance(record_dynamics, DynamicsRecorder):
                self.recorder = record_dynamics
            elif record_dynamics is True:
                self.recorder = DynamicsRecorder()
            else:
                self.recorder = DynamicsRecorder(capacity=int(record_dynamics))
        #: per-step ``(mean_gcd, conflict_fraction)`` when tracking is on
        self.conflict_stats: list[tuple[float, float]] = []
        # Preallocated (K, dim) per-task gradient workspaces, reused across
        # steps and keyed by dim (allocated lazily once a dim is seen) — the
        # parameter-space d and the batch-shaped feature-space d_feat can
        # interleave without reallocating.  Balancers never retain the
        # matrix, so reuse is safe; `task_gradients` hands out fresh
        # matrices because its callers may keep them.
        self._grad_workspaces: dict[int, np.ndarray] = {}
        # Accumulate-then-resolve state: running (K, dim) gradient sum, (K,)
        # loss sum, the micro-step count within the open window, and (in
        # feature space) the retained per-micro-step trunk graphs.
        self._acc_grads: np.ndarray | None = None
        self._acc_losses: np.ndarray | None = None
        self._acc_features: list[Tensor] = []
        self._micro_steps = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the parallel shared-memory block (no-op otherwise).

        Idempotent; required in parallel mode once the trainer is done —
        shared-memory segments outlive the process if never unlinked.  The
        model keeps its (now copied-out) parameters usable via
        :meth:`~repro.nn.arena.ParameterArena.unpack`.
        """
        if self.shared_buffers is None:
            return
        if self.arena is not None:
            self.arena.unpack()
            self.arena = None
        self.shared_buffers.close()
        self.shared_buffers = None

    def __enter__(self) -> "MTLTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    #: Max distinct gradient widths cached by :meth:`_workspace` (FIFO).
    _MAX_WORKSPACES = 8

    def _workspace(self, dim: int) -> np.ndarray:
        """The trainer-owned ``(K, dim)`` gradient matrix for this width.

        One buffer per dim: parameter-space steps (d), feature-space steps
        (d_feat, which follows the batch shape) and varying batch sizes all
        keep their own reused buffer instead of thrashing a single cache
        slot.  Bounded so a pathological dim sequence cannot grow it
        without limit.
        """
        workspace = self._grad_workspaces.get(dim)
        if workspace is None:
            if len(self._grad_workspaces) >= self._MAX_WORKSPACES:
                self._grad_workspaces.pop(next(iter(self._grad_workspaces)))
            self._grad_workspaces[dim] = workspace = np.empty((len(self.tasks), dim))
        return workspace

    def _zero_grad(self) -> None:
        """Clear all model gradients — one buffer fill on the arena path."""
        if self.arena is not None:
            self.arena.zero_grad()
        else:
            self.model.zero_grad()

    def _zero_shared_grads(self, shared: list[Parameter]) -> None:
        """Clear the shared partition's gradients (per-task reference loop)."""
        if self._shared_grad_view is not None:
            self._shared_grad_view.fill(0.0)
        else:
            for param in shared:
                param.zero_grad()

    def _collect_param_grads(
        self,
        loss_tensors: list[Tensor],
        shared: list[Parameter],
        grads: np.ndarray,
        telemetry: Telemetry,
    ) -> np.ndarray:
        """Fill ``grads[k]`` with task k's shared-parameter gradient.

        ``multi_root``: one union-graph walk (`backward_multi`) collects all
        roots at once; each ``task_backward`` span then wraps that root's
        accumulation into the workspace.  ``per_task``: the reference loop —
        zero shared grads, backward task k's loss, flatten.  Both modes
        accumulate task-specific (head) gradients into ``.grad`` as a side
        effect, ready for the optimizer step.
        """
        if self.backward_mode == "multi_root":
            slots = backward_multi(loss_tensors, per_root=shared)
            for k, task in enumerate(self.tasks):
                with telemetry.span("task_backward", task=task.name):
                    grad_vector_from_slots(shared, slots, k, out=grads[k])
        else:
            for k, loss in enumerate(loss_tensors):
                with telemetry.span("task_backward", task=self.tasks[k].name):
                    self._zero_shared_grads(shared)
                    loss.backward()
                    grad_vector(shared, out=grads[k])
        return grads

    def _resolve_or_accumulate(
        self,
        grads: np.ndarray,
        losses: np.ndarray,
        shared: list[Parameter],
        telemetry: Telemetry,
    ) -> None:
        """Balance + step now, or fold this micro-step into the window.

        ``accumulate_steps == 1`` is the historical per-step tail, call for
        call.  With ``W > 1`` the per-task matrix and losses are summed;
        model gradients accumulate naturally because micro-steps skip
        ``zero_grad``.  When the window fills: scale the accumulated model
        gradients to their window mean, resolve conflicts ONCE on the
        accumulated matrix, overwrite the shared partition with the
        balanced direction, and take a single optimizer step.  A window
        left partially filled (e.g. at the end of ``fit``) stays open —
        its micro-steps apply no update until the window completes.
        """
        if self.accumulate_steps == 1:
            with telemetry.span("balance", method=self.balancer.name):
                combined = self.balancer.balance(grads, losses)
            self._record_conflicts(grads, stats=self.balancer.gradstats)
            set_grad_from_vector(shared, combined)
            with telemetry.span("optimizer_step"):
                self.optimizer.step()
            self._zero_grad()
            return
        window = self.accumulate_steps
        if self._acc_grads is None or self._acc_grads.shape != grads.shape:
            self._acc_grads = np.zeros_like(grads)
            self._acc_losses = np.zeros_like(losses)
        self._record_conflicts(grads)
        self._acc_grads += grads
        self._acc_losses += losses
        self._micro_steps += 1
        if self._micro_steps < window:
            return
        self._scale_grads(1.0 / window)
        with telemetry.span("balance", method=self.balancer.name):
            combined = self.balancer.resolve_accumulated(
                self._acc_grads, self._acc_losses, window
            )
        set_grad_from_vector(shared, combined)
        with telemetry.span("optimizer_step"):
            self.optimizer.step()
        self._zero_grad()
        self._micro_steps = 0
        self._acc_grads.fill(0.0)
        self._acc_losses.fill(0.0)

    def _resolve_or_accumulate_features(
        self,
        features: Tensor,
        grads: np.ndarray,
        losses: np.ndarray,
        telemetry: Telemetry,
    ) -> None:
        """Feature-space tail: balance, trunk backprop and step — or fold.

        Mirrors :meth:`_resolve_or_accumulate` with one structural
        difference: micro-steps never write shared-parameter gradients
        (per-task backward stops at the detached representation), so each
        micro-step retains its ``features`` graph and the window boundary
        back-propagates the resolved direction scaled by ``1/W`` through
        every retained graph — the window-mean chain rule
        ``Σ_w J_wᵀ (combined / W)``.  A mid-window feature-dimension change
        (batch-size change) discards the open window with a warning rather
        than mixing incompatible spaces.
        """
        if self.accumulate_steps == 1:
            with telemetry.span("balance", method=self.balancer.name):
                combined = self.balancer.balance(grads, losses)
            self._record_conflicts(grads, stats=self.balancer.gradstats)
            # The single shared-trunk backprop that makes this mode fast is
            # still backward time; it is recorded under its own span so
            # backward_seconds can include it.
            with telemetry.span("backward_shared"):
                features.backward(combined.reshape(features.shape))
            with telemetry.span("optimizer_step"):
                self.optimizer.step()
            self._zero_grad()
            return
        window = self.accumulate_steps
        if self._micro_steps and self._acc_grads.shape != grads.shape:
            warnings.warn(
                "feature-space accumulation window discarded: the feature "
                f"dimension changed from {self._acc_grads.shape[1]} to "
                f"{grads.shape[1]} mid-window (batch-size change); the dropped "
                "micro-steps apply no update",
                RuntimeWarning,
                stacklevel=3,
            )
            self._reset_feature_window()
            self._zero_grad()
        if self._acc_grads is None or self._acc_grads.shape != grads.shape:
            self._acc_grads = np.zeros_like(grads)
            self._acc_losses = np.zeros_like(losses)
        self._record_conflicts(grads)
        self._acc_grads += grads
        self._acc_losses += losses
        self._acc_features.append(features)
        self._micro_steps += 1
        if self._micro_steps < window:
            return
        retained = self._acc_features
        # Head gradients accumulated over the window become their mean; the
        # shared partition is still zero at this point.
        self._scale_grads(1.0 / window)
        with telemetry.span("balance", method=self.balancer.name):
            combined = self.balancer.resolve_accumulated(
                self._acc_grads, self._acc_losses, window
            )
        seed = (combined / window).reshape(features.shape)
        with telemetry.span("backward_shared"):
            for graph in retained:
                graph.backward(seed)
        with telemetry.span("optimizer_step"):
            self.optimizer.step()
        self._zero_grad()
        self._reset_feature_window()

    def _reset_feature_window(self) -> None:
        """Drop the open feature-space accumulation window entirely."""
        self._micro_steps = 0
        self._acc_features = []
        self._acc_grads = None
        self._acc_losses = None

    def _scale_grads(self, scale: float) -> None:
        """In-place scale of every model gradient (one vector op on arenas)."""
        if self.arena is not None:
            self.arena.grad *= scale
        else:
            for param in self.model.parameters():
                if param.grad is not None:
                    param.grad *= scale

    # ------------------------------------------------------------------
    # Single optimization steps
    # ------------------------------------------------------------------
    def train_step_single(self, inputs, targets: Mapping[str, np.ndarray]) -> np.ndarray:
        """One step in single-input mode; returns per-task loss values."""
        telemetry = self.telemetry
        with telemetry.span("step", **self._step_labels):
            self.model.train()
            shared = self.model.shared_parameters()
            if self.accumulate_steps == 1 or self._micro_steps == 0:
                self._zero_grad()

            if self.grad_space == "features":
                features, grads, losses = self._collect_feature_grads(
                    inputs, targets, telemetry
                )
                self._resolve_or_accumulate_features(features, grads, losses, telemetry)
            else:
                with telemetry.span("forward"):
                    outputs = self.model.forward_all(inputs)
                    loss_tensors = [
                        task.loss_fn(outputs[task.name], targets[task.name])
                        for task in self.tasks
                    ]
                    losses = np.array([loss.item() for loss in loss_tensors])
                grads = self._workspace(sum(p.size for p in shared))
                with telemetry.span("backward"):
                    self._collect_param_grads(loss_tensors, shared, grads, telemetry)
                self._resolve_or_accumulate(grads, losses, shared, telemetry)
        self._finish_step(losses)
        return losses

    def _collect_feature_grads(
        self, inputs, targets: Mapping[str, np.ndarray], telemetry: Telemetry
    ) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Forward + per-task backward to the shared representation.

        Returns ``(features, grads, losses)``: the live trunk output (whose
        graph the resolve tail back-propagates), the ``(K, d_feat)``
        feature-gradient workspace, and the loss values.  A head whose loss
        is disconnected from the trunk contributes a zero row in *both*
        backward modes — per-task backward leaves the cut's gradient
        unmaterialized, exactly like a ``None`` multi-root slot.
        """
        with telemetry.span("forward"):
            features = self.model.shared_features(inputs)
            cut = Tensor(features.data)
            cut.requires_grad = True
            outputs = self.model.forward_heads(cut, inputs)
            loss_tensors = [
                task.loss_fn(outputs[task.name], targets[task.name]) for task in self.tasks
            ]
            losses = np.array([loss.item() for loss in loss_tensors])
        grads = self._workspace(cut.size)
        with telemetry.span("backward"):
            if self.backward_mode == "multi_root":
                (cut_slots,) = backward_multi(loss_tensors, per_root=[cut])
                for k, task in enumerate(self.tasks):
                    with telemetry.span("task_backward", task=task.name):
                        slot = cut_slots[k]
                        if slot is None:
                            grads[k] = 0.0
                        else:
                            grads[k] = slot.reshape(-1)
            else:
                for k, loss in enumerate(loss_tensors):
                    with telemetry.span("task_backward", task=self.tasks[k].name):
                        cut.zero_grad()
                        loss.backward()
                        if cut.grad is None:
                            grads[k] = 0.0
                        else:
                            grads[k] = cut.grad.reshape(-1)
        if self.feature_normalizer is not None:
            self.feature_normalizer.normalize(grads)
        return features, grads, losses

    def train_step_multi(self, batches: Mapping[str, tuple]) -> np.ndarray:
        """One step in multi-input mode; ``batches[task] = (inputs, targets)``."""
        telemetry = self.telemetry
        with telemetry.span("step", **self._step_labels):
            self.model.train()
            shared = self.model.shared_parameters()
            if self.accumulate_steps == 1 or self._micro_steps == 0:
                self._zero_grad()
            losses = np.empty(len(self.tasks))
            loss_tensors = []
            with telemetry.span("forward"):
                for k, task in enumerate(self.tasks):
                    inputs, targets = batches[task.name]
                    output = self.model.forward(inputs, task.name)
                    loss = task.loss_fn(output, targets)
                    loss_tensors.append(loss)
                    losses[k] = loss.item()
            grads = self._workspace(sum(p.size for p in shared))
            with telemetry.span("backward"):
                self._collect_param_grads(loss_tensors, shared, grads, telemetry)
            self._resolve_or_accumulate(grads, losses, shared, telemetry)
        self._finish_step(losses)
        return losses

    def _finish_step(self, losses: np.ndarray) -> None:
        """Bookkeeping shared by both step functions."""
        self.step_count += 1
        self.history.record_step(losses)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("train_steps_total", **self._step_labels).inc()
            for task, loss in zip(self.tasks, losses):
                telemetry.gauge("train_loss", task=task.name).set(float(loss))
        if self.recorder is not None:
            self._record_dynamics_sample(losses)

    def _record_dynamics_sample(self, losses: np.ndarray) -> None:
        """Offer this step's conflict-dynamics sample to the recorder.

        Reads the :class:`~repro.core.gradstats.GradStats` the balancer
        built during ``balance()`` (no extra ``d``-length work) plus the
        balancer's own dynamics hook; keyed by the 1-based step index.
        The sample dict is built lazily — a high-stride recorder that
        discards this step never pays for the snapshot.
        """

        def build() -> dict:
            sample: dict = {"losses": [float(loss) for loss in losses]}
            stats = self.balancer.gradstats
            if stats is not None:
                sample.update(stats.snapshot())
            sample.update(self.balancer.dynamics())
            return sample

        self.recorder.record(self.step_count, build)

    def _record_conflicts(self, grads: np.ndarray, stats=None) -> None:
        """Append this step's (mean GCD, conflict fraction) diagnostics.

        Called from the resolve tails so the balance-time
        :attr:`~repro.core.balancer.GradientBalancer.gradstats` can be
        reused — conflict tracking then costs zero extra Gram GEMMs.  A
        stats object over a *different* matrix (a balancer that skipped
        ``_check_inputs``, an accumulate micro-step) is rejected by
        identity and rebuilt.
        """
        if not self.track_conflicts:
            return
        from ..core.conflict import conflict_fraction, pairwise_gcd
        from ..core.gradstats import GradStats

        # One GradStats feeds both diagnostics — one GEMM instead of two.
        if stats is None or stats.grads is not grads:
            stats = GradStats(np.asarray(grads, dtype=np.float64))
        matrix = pairwise_gcd(grads, stats=stats)
        num_tasks = matrix.shape[0]
        mean_gcd = (
            float(matrix[np.triu_indices(num_tasks, k=1)].mean()) if num_tasks > 1 else 0.0
        )
        self.conflict_stats.append((mean_gcd, conflict_fraction(grads, stats=stats)))

    # ------------------------------------------------------------------
    # Gradient inspection (used by the TCI/GCD analysis)
    # ------------------------------------------------------------------
    def task_gradients(self, inputs, targets: Mapping[str, np.ndarray]) -> np.ndarray:
        """Per-task shared-parameter gradients without updating anything.

        Returns a fresh ``(K, d)`` matrix (not the trainer's step
        workspace) — callers are free to keep it across calls.
        """
        self.model.train()
        shared = self.model.shared_parameters()
        self._zero_grad()
        outputs = self.model.forward_all(inputs)
        loss_tensors = [
            task.loss_fn(outputs[task.name], targets[task.name]) for task in self.tasks
        ]
        grads = np.empty((len(self.tasks), sum(p.size for p in shared)))
        # Inspection path: no step is running, so spans stay out of the
        # step/backward accounting.
        self._collect_param_grads(loss_tensors, shared, grads, NULL_TELEMETRY)
        self._zero_grad()
        return grads

    # ------------------------------------------------------------------
    # Epoch loops
    # ------------------------------------------------------------------
    def fit(
        self,
        train_data,
        epochs: int,
        batch_size: int,
        eval_data=None,
        max_steps_per_epoch: int | None = None,
        drop_last: bool = False,
    ) -> History:
        """Train for ``epochs`` epochs; optionally evaluate per epoch.

        ``train_data`` is an :class:`ArrayDataset` or
        :class:`~repro.data.streaming.StreamingDataset` (single-input), or
        a ``{task: dataset}`` mapping of either (multi-input).  Streaming
        datasets iterate in bounded memory — shards are generated (or
        mmap-loaded) on demand, double-buffered by a prefetch thread that
        is shut down even when a training step raises.  ``drop_last``
        discards each epoch's trailing partial batch (per shard for
        streams) — useful when a stateful balancer assumes a fixed batch
        shape.  On completion the trainer's metric registry is flushed to
        the attached sinks.

        In parallel mode the worker pool is started on entry and shut down
        before returning (even on error), so workers never outlive a fit.
        """
        executor = None
        if self.parallel:
            executor = self._start_executor(train_data, batch_size)
        try:
            for _ in range(epochs):
                if executor is not None:
                    self._run_epoch_parallel(
                        executor, train_data, batch_size, max_steps_per_epoch, drop_last
                    )
                elif self.mode == SINGLE_INPUT:
                    self._run_epoch_single(
                        train_data, batch_size, max_steps_per_epoch, drop_last
                    )
                else:
                    self._run_epoch_multi(
                        train_data, batch_size, max_steps_per_epoch, drop_last
                    )
                metrics = self.evaluate(eval_data) if eval_data is not None else None
                self.history.close_epoch(metrics)
                self.telemetry.counter("train_epochs_total", **self._step_labels).inc()
        finally:
            if executor is not None:
                executor.shutdown()
        self.flush_dynamics()
        self.telemetry.flush()
        if self.profiler is not None and self._profile_path is not None:
            self.profiler.export_chrome_trace(self._profile_path)
        return self.history

    def flush_dynamics(self) -> None:
        """Emit the recorder's retained samples to the telemetry sinks.

        Called automatically at the end of :meth:`fit`; call it directly
        when stepping the trainer manually.  Safe to call repeatedly —
        the report layer dedupes dynamics events by step.
        """
        if self.recorder is None or not self.telemetry.enabled:
            return
        meta = {"tasks": [task.name for task in self.tasks]}
        for event in self.recorder.to_events(meta=meta):
            self.telemetry.emit(event)

    # ------------------------------------------------------------------
    # Parallel (shared-memory data-parallel) training
    # ------------------------------------------------------------------
    def _start_executor(self, dataset: ArrayDataset, batch_size: int) -> ParallelExecutor:
        """Spawn the worker pool for one ``fit`` over ``dataset``."""
        spec = WorkerSpec(
            model_factory=self.model_factory,
            task_names=[task.name for task in self.tasks],
            loss_fns=[task.loss_fn for task in self.tasks],
            dataset=dataset,
            telemetry_base=self._worker_telemetry,
        )
        return ParallelExecutor(
            spec,
            self.shared_buffers,
            batch_size,
            start_method=self._start_method,
            step_timeout=self._step_timeout,
        )

    def _run_epoch_parallel(
        self,
        executor: ParallelExecutor,
        dataset: ArrayDataset,
        batch_size: int,
        max_steps,
        drop_last: bool = False,
    ) -> None:
        # Same generator calls as the sequential loader — parallel and
        # sequential runs with equal seeds walk identical batch streams.
        # Streaming datasets hand out global indices on the shard-ordered
        # stream; every batch lies inside one shard, so each worker's
        # contiguous slice touches a single shard of its own dataset copy.
        if isinstance(dataset, StreamingDataset):
            index_stream = dataset.batch_indices(
                batch_size, rng=self.rng, drop_last=drop_last
            )
        else:
            index_stream = batch_index_iter(
                len(dataset), batch_size, rng=self.rng, drop_last=drop_last
            )
        for step, idx in enumerate(index_stream):
            if max_steps is not None and step >= max_steps:
                break
            self._parallel_train_step(executor, idx)

    def _parallel_train_step(
        self, executor: ParallelExecutor, batch_indices: np.ndarray
    ) -> np.ndarray:
        """One data-parallel step: dispatch → barrier → reduce → resolve.

        The workers produce weighted shard gradients whose flat-sum equals
        the sequential whole-batch gradient (per-sample mean losses compose
        exactly under ``n_w / n`` weights); the balancer and optimizer then
        run exactly as in the single-process step.  Raises
        :class:`~repro.parallel.WorkerCrashed` if a worker dies mid-step.
        """
        telemetry = self.telemetry
        shared = self.model.shared_parameters()
        with telemetry.span("step", **self._step_labels):
            self.model.train()
            with telemetry.span("dispatch"):
                executor.dispatch(
                    self.step_count, np.ascontiguousarray(batch_indices, dtype=np.int64)
                )
            wait_started = time.perf_counter()
            with telemetry.span("shard_compute"):
                busy_seconds = executor.wait(self.step_count)
            wait_wall = time.perf_counter() - wait_started
            if telemetry.enabled and wait_wall > 0:
                for worker, busy in enumerate(busy_seconds):
                    telemetry.gauge("parallel_worker_utilization", worker=str(worker)).set(
                        min(busy / wait_wall, 1.0)
                    )
            grads = self._workspace(sum(p.size for p in shared))
            losses = np.empty(len(self.tasks))
            with telemetry.span("reduce"):
                executor.reduce(
                    grads,
                    self.arena.grad,
                    losses,
                    accumulate_full=self.accumulate_steps > 1,
                )
            self._resolve_or_accumulate(grads, losses, shared, telemetry)
        self._finish_step(losses)
        return losses

    def _make_loader(self, dataset, batch_size: int, drop_last: bool):
        """The epoch loader for one dataset: eager or streaming."""
        if isinstance(dataset, StreamingDataset):
            return StreamingLoader(
                dataset,
                batch_size,
                rng=self.rng,
                drop_last=drop_last,
                telemetry=self.telemetry,
            )
        return DataLoader(dataset, batch_size, rng=self.rng, drop_last=drop_last)

    @staticmethod
    def _close_iterator(iterator) -> None:
        """Release a loader iterator's resources (prefetch threads)."""
        close = getattr(iterator, "close", None)
        if close is not None:
            close()

    def _run_epoch_single(
        self, dataset: ArrayDataset, batch_size: int, max_steps, drop_last: bool = False
    ) -> None:
        iterator = iter(self._make_loader(dataset, batch_size, drop_last))
        # Closing in a finally (not just on exhaustion) is what guarantees
        # a raising train step leaves no prefetch thread behind — and a
        # generator's close() never masks the in-flight exception.
        try:
            for step, (inputs, targets) in enumerate(iterator):
                if max_steps is not None and step >= max_steps:
                    break
                self.train_step_single(inputs, targets)
        finally:
            self._close_iterator(iterator)

    def _run_epoch_multi(
        self,
        datasets: Mapping[str, ArrayDataset],
        batch_size: int,
        max_steps,
        drop_last: bool = False,
    ) -> None:
        iterators = {}
        loaders = {
            name: self._make_loader(dataset, batch_size, drop_last)
            for name, dataset in datasets.items()
        }
        steps = max(len(loader) for loader in loaders.values())
        if max_steps is not None:
            steps = min(steps, max_steps)
        empty = sorted(name for name, loader in loaders.items() if len(loader) == 0)
        if steps > 0 and empty:
            # Cycling an empty loader would StopIteration forever; name the
            # offender instead (drop_last with batch_size > rows hits this).
            raise ValueError(
                f"task datasets {empty} yield no batches at batch_size="
                f"{batch_size} with drop_last={drop_last}"
            )
        for name, loader in loaders.items():
            iterators[name] = iter(loader)
        try:
            for _ in range(steps):
                batches = {}
                for task in self.tasks:
                    try:
                        batches[task.name] = next(iterators[task.name])
                    except StopIteration:
                        iterators[task.name] = iter(loaders[task.name])
                        batches[task.name] = next(iterators[task.name])
                self.train_step_multi(batches)
        finally:
            for iterator in iterators.values():
                self._close_iterator(iterator)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, data, batch_size: int = 256) -> dict[str, dict[str, float]]:
        """Task → metric → value on held-out data (no gradients)."""
        from .evaluation import evaluate_model

        return evaluate_model(self.model, self.tasks, data, self.mode, batch_size)

    # ------------------------------------------------------------------
    # Timing views (span-backed)
    # ------------------------------------------------------------------
    @property
    def last_step_seconds(self) -> float:
        """Wall-clock seconds of the most recent optimization step."""
        durations = self.telemetry.durations("step")
        return durations[-1] if durations else 0.0

    @property
    def backward_seconds(self) -> list[float]:
        """Per-step *backward-only* seconds (the paper's Fig. 8 quantity).

        Sum of the per-task backward passes; with
        ``grad_space="features"`` the shared-trunk backprop is included
        as well.
        """
        per_step = self.telemetry.durations("step/backward")
        shared = self.telemetry.durations("step/backward_shared")
        if shared and len(shared) == len(per_step):
            return [b + s for b, s in zip(per_step, shared)]
        return per_step

    @property
    def mean_step_seconds(self) -> float:
        """Average wall-clock seconds per *whole* optimization step."""
        durations = self.telemetry.durations("step")
        return float(np.mean(durations)) if durations else 0.0

    @property
    def median_step_seconds(self) -> float:
        """Median step time — robust to scheduler noise."""
        durations = self.telemetry.durations("step")
        return float(np.median(durations)) if durations else 0.0

    @property
    def mean_backward_seconds(self) -> float:
        """Average backward-only seconds per step (Fig. 8)."""
        durations = self.backward_seconds
        return float(np.mean(durations)) if durations else 0.0

    @property
    def median_backward_seconds(self) -> float:
        """Median backward-only seconds per step (Fig. 8)."""
        durations = self.backward_seconds
        return float(np.median(durations)) if durations else 0.0

    # ------------------------------------------------------------------
    # Deprecated surface
    # ------------------------------------------------------------------
    @property
    def grad_source(self) -> str:
        """Deprecated alias of :attr:`grad_space` (legacy spelling)."""
        warnings.warn(
            "MTLTrainer.grad_source is deprecated; read trainer.grad_space "
            "('parameters' or 'features') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return "params" if self.grad_space == "parameters" else "features"

    @property
    def step_seconds(self) -> list[float]:
        """Deprecated: use ``trainer.telemetry.durations("step")``."""
        warnings.warn(
            "MTLTrainer.step_seconds is deprecated; read span durations from "
            'trainer.telemetry.durations("step") instead',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.telemetry.durations("step")

    @property
    def backward_seconds_total(self) -> float:
        """Deprecated: use ``sum(trainer.backward_seconds)``.

        Historical note: this attribute used to accumulate *whole-step*
        wall-clock (forward + balancing + optimizer) under a backward-time
        name; it now returns genuinely backward-only seconds.
        """
        warnings.warn(
            "MTLTrainer.backward_seconds_total is deprecated; use "
            "sum(trainer.backward_seconds) (note: now backward-only time, "
            "not whole-step time)",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(sum(self.backward_seconds))

    @property
    def conflict_history(self) -> list[tuple[float, float]]:
        """Deprecated alias of :attr:`conflict_stats`."""
        warnings.warn(
            "MTLTrainer.conflict_history is deprecated; use trainer.conflict_stats",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.conflict_stats
