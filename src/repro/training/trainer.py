"""Multi-task trainer with per-task gradient collection and balancing.

Reproduces the LibMTL-style optimization loop the paper runs on:

1. For each task, back-propagate that task's loss alone and read the
   gradient over the *shared* parameters (one backward pass per task;
   ``grad_source="params"``).
2. Feed the ``(K, d)`` gradient matrix plus the loss values to the
   gradient balancer (MoCoGrad or any baseline).
3. Write the combined gradient back into the shared parameters, keep the
   task-specific gradients untouched, and take one optimizer step.

The paper's §VI-C speedup — balancing *feature-level* gradients (w.r.t. the
shared representation z) so the shared trunk is back-propagated only once —
is available as ``grad_source="features"`` for single-input HPS models.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from ..arch.base import MTLModel
from ..core.balancer import GradientBalancer
from ..data.base import MULTI_INPUT, SINGLE_INPUT, ArrayDataset, DataLoader, TaskSpec
from ..nn.module import Parameter
from ..nn.optim import SGD, Adam, Optimizer
from ..nn.tensor import Tensor
from ..nn.utils import grad_vector, set_grad_from_vector
from .history import History

__all__ = ["MTLTrainer"]


def _make_optimizer(name: str, parameters: list[Parameter], lr: float) -> Optimizer:
    name = name.lower()
    if name == "adam":
        return Adam(parameters, lr=lr)
    if name == "sgd":
        return SGD(parameters, lr=lr)
    if name == "sgdm":
        return SGD(parameters, lr=lr, momentum=0.9)
    raise ValueError(f"unknown optimizer {name!r}; use adam, sgd or sgdm")


class MTLTrainer:
    """Trains an :class:`~repro.arch.base.MTLModel` under a gradient balancer.

    Parameters
    ----------
    model, tasks, balancer:
        The architecture, the task specifications (order defines the task
        axis of the gradient matrix) and the balancing strategy.
    mode:
        ``"single_input"`` (one batch feeds all tasks) or ``"multi_input"``
        (one batch per task per step).
    grad_source:
        ``"params"`` (default) or ``"features"`` (HPS single-input only).
    optimizer / lr:
        Optimizer name (adam, sgd, sgdm) and learning rate; the paper uses
        Adam at 1e-4 (recommendation/vision) or 3e-3 (QM9).
    seed:
        Seeds batch order; balancer randomness is seeded separately through
        the balancer's own ``seed``.
    track_conflicts:
        When True, record the mean pairwise GCD and the conflicting-pair
        fraction of the per-task gradients at every step
        (``trainer.conflict_history``) — the live version of the paper's
        Section III diagnostics.
    """

    def __init__(
        self,
        model: MTLModel,
        tasks: Sequence[TaskSpec],
        balancer: GradientBalancer,
        mode: str = SINGLE_INPUT,
        grad_source: str = "params",
        optimizer: str = "adam",
        lr: float = 1e-3,
        seed: int | None = None,
        track_conflicts: bool = False,
    ) -> None:
        if mode not in (SINGLE_INPUT, MULTI_INPUT):
            raise ValueError(f"mode must be {SINGLE_INPUT!r} or {MULTI_INPUT!r}")
        if grad_source not in ("params", "features"):
            raise ValueError("grad_source must be 'params' or 'features'")
        if grad_source == "features" and mode != SINGLE_INPUT:
            raise ValueError("feature-level gradients require single-input MTL")
        model_tasks = set(model.task_names)
        spec_tasks = {task.name for task in tasks}
        if model_tasks != spec_tasks:
            raise ValueError(f"model tasks {model_tasks} do not match specs {spec_tasks}")
        self.model = model
        self.tasks = list(tasks)
        self.balancer = balancer
        self.mode = mode
        self.grad_source = grad_source
        self.optimizer = _make_optimizer(optimizer, model.parameters(), lr)
        self.rng = np.random.default_rng(seed)
        self.balancer.reset(len(self.tasks))
        self.history = History([task.name for task in self.tasks])
        self.last_step_seconds = 0.0
        self.backward_seconds_total = 0.0
        self.step_count = 0
        self.track_conflicts = track_conflicts
        #: wall-clock duration of every optimization step
        self.step_seconds: list[float] = []
        #: per-step ``(mean_gcd, conflict_fraction)`` when tracking is on
        self.conflict_history: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Single optimization steps
    # ------------------------------------------------------------------
    def train_step_single(self, inputs, targets: Mapping[str, np.ndarray]) -> np.ndarray:
        """One step in single-input mode; returns per-task loss values."""
        start = time.perf_counter()
        self.model.train()
        shared = self.model.shared_parameters()
        self.model.zero_grad()

        if self.grad_source == "features":
            losses = self._collect_feature_grads(inputs, targets, shared)
        else:
            outputs = self.model.forward_all(inputs)
            loss_tensors = [
                task.loss_fn(outputs[task.name], targets[task.name]) for task in self.tasks
            ]
            losses = np.array([loss.item() for loss in loss_tensors])
            grads = np.empty((len(self.tasks), sum(p.size for p in shared)))
            for k, loss in enumerate(loss_tensors):
                for param in shared:
                    param.zero_grad()
                loss.backward()
                grads[k] = grad_vector(shared)
            self._record_conflicts(grads)
            combined = self.balancer.balance(grads, losses)
            set_grad_from_vector(shared, combined)

        self.optimizer.step()
        self.model.zero_grad()
        self.last_step_seconds = time.perf_counter() - start
        self.backward_seconds_total += self.last_step_seconds
        self.step_seconds.append(self.last_step_seconds)
        self.step_count += 1
        self.history.record_step(losses)
        return losses

    def _collect_feature_grads(
        self, inputs, targets: Mapping[str, np.ndarray], shared: list[Parameter]
    ) -> np.ndarray:
        """Feature-level gradient balancing (one shared backward pass)."""
        features = self.model.shared_features(inputs)
        cut = Tensor(features.data)
        cut.requires_grad = True
        outputs = self.model.forward_heads(cut)
        loss_tensors = [
            task.loss_fn(outputs[task.name], targets[task.name]) for task in self.tasks
        ]
        losses = np.array([loss.item() for loss in loss_tensors])
        grads = np.empty((len(self.tasks), cut.size))
        for k, loss in enumerate(loss_tensors):
            cut.zero_grad()
            loss.backward()
            grads[k] = cut.grad.reshape(-1)
        self._record_conflicts(grads)
        combined = self.balancer.balance(grads, losses)
        features.backward(combined.reshape(features.shape))
        return losses

    def train_step_multi(self, batches: Mapping[str, tuple]) -> np.ndarray:
        """One step in multi-input mode; ``batches[task] = (inputs, targets)``."""
        start = time.perf_counter()
        self.model.train()
        shared = self.model.shared_parameters()
        self.model.zero_grad()
        losses = np.empty(len(self.tasks))
        grads = np.empty((len(self.tasks), sum(p.size for p in shared)))
        for k, task in enumerate(self.tasks):
            inputs, targets = batches[task.name]
            output = self.model.forward(inputs, task.name)
            loss = task.loss_fn(output, targets)
            losses[k] = loss.item()
            for param in shared:
                param.zero_grad()
            loss.backward()
            grads[k] = grad_vector(shared)
        self._record_conflicts(grads)
        combined = self.balancer.balance(grads, losses)
        set_grad_from_vector(shared, combined)
        self.optimizer.step()
        self.model.zero_grad()
        self.last_step_seconds = time.perf_counter() - start
        self.backward_seconds_total += self.last_step_seconds
        self.step_seconds.append(self.last_step_seconds)
        self.step_count += 1
        self.history.record_step(losses)
        return losses

    def _record_conflicts(self, grads: np.ndarray) -> None:
        if not self.track_conflicts:
            return
        from ..core.conflict import conflict_fraction, pairwise_gcd

        matrix = pairwise_gcd(grads)
        num_tasks = matrix.shape[0]
        mean_gcd = (
            float(matrix[np.triu_indices(num_tasks, k=1)].mean()) if num_tasks > 1 else 0.0
        )
        self.conflict_history.append((mean_gcd, conflict_fraction(grads)))

    # ------------------------------------------------------------------
    # Gradient inspection (used by the TCI/GCD analysis)
    # ------------------------------------------------------------------
    def task_gradients(self, inputs, targets: Mapping[str, np.ndarray]) -> np.ndarray:
        """Per-task shared-parameter gradients without updating anything."""
        self.model.train()
        shared = self.model.shared_parameters()
        self.model.zero_grad()
        outputs = self.model.forward_all(inputs)
        grads = np.empty((len(self.tasks), sum(p.size for p in shared)))
        for k, task in enumerate(self.tasks):
            for param in shared:
                param.zero_grad()
            task.loss_fn(outputs[task.name], targets[task.name]).backward()
            grads[k] = grad_vector(shared)
        self.model.zero_grad()
        return grads

    # ------------------------------------------------------------------
    # Epoch loops
    # ------------------------------------------------------------------
    def fit(
        self,
        train_data,
        epochs: int,
        batch_size: int,
        eval_data=None,
        max_steps_per_epoch: int | None = None,
    ) -> History:
        """Train for ``epochs`` epochs; optionally evaluate per epoch.

        ``train_data`` is an :class:`ArrayDataset` (single-input) or a
        ``{task: ArrayDataset}`` mapping (multi-input).
        """
        for _ in range(epochs):
            if self.mode == SINGLE_INPUT:
                self._run_epoch_single(train_data, batch_size, max_steps_per_epoch)
            else:
                self._run_epoch_multi(train_data, batch_size, max_steps_per_epoch)
            metrics = self.evaluate(eval_data) if eval_data is not None else None
            self.history.close_epoch(metrics)
        return self.history

    def _run_epoch_single(self, dataset: ArrayDataset, batch_size: int, max_steps) -> None:
        loader = DataLoader(dataset, batch_size, rng=self.rng)
        for step, (inputs, targets) in enumerate(loader):
            if max_steps is not None and step >= max_steps:
                break
            self.train_step_single(inputs, targets)

    def _run_epoch_multi(self, datasets: Mapping[str, ArrayDataset], batch_size: int, max_steps) -> None:
        iterators = {}
        loaders = {
            name: DataLoader(dataset, batch_size, rng=self.rng)
            for name, dataset in datasets.items()
        }
        steps = max(len(loader) for loader in loaders.values())
        if max_steps is not None:
            steps = min(steps, max_steps)
        for name, loader in loaders.items():
            iterators[name] = iter(loader)
        for _ in range(steps):
            batches = {}
            for task in self.tasks:
                try:
                    batches[task.name] = next(iterators[task.name])
                except StopIteration:
                    iterators[task.name] = iter(loaders[task.name])
                    batches[task.name] = next(iterators[task.name])
            self.train_step_multi(batches)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, data, batch_size: int = 256) -> dict[str, dict[str, float]]:
        """Task → metric → value on held-out data (no gradients)."""
        from .evaluation import evaluate_model

        return evaluate_model(self.model, self.tasks, data, self.mode, batch_size)

    @property
    def mean_step_seconds(self) -> float:
        """Average wall-clock seconds per optimization step (Fig. 8)."""
        if self.step_count == 0:
            return 0.0
        return self.backward_seconds_total / self.step_count

    @property
    def median_step_seconds(self) -> float:
        """Median step time — robust to scheduler noise (used by Fig. 8)."""
        if not self.step_seconds:
            return 0.0
        return float(np.median(self.step_seconds))
