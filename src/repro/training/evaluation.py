"""Model evaluation over benchmark splits."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..arch.base import MTLModel
from ..data.base import MULTI_INPUT, SINGLE_INPUT, ArrayDataset, TaskSpec
from ..nn.tensor import inference_mode

__all__ = ["evaluate_model", "collect_outputs"]


def _batched_indices(n: int, batch_size: int):
    for start in range(0, n, batch_size):
        yield np.arange(start, min(start + batch_size, n))


def collect_outputs(
    model: MTLModel,
    dataset: ArrayDataset,
    task: str,
    batch_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Raw model outputs and targets for one task over a full dataset."""
    outputs, targets = [], []
    model.eval()
    with inference_mode():
        for idx in _batched_indices(len(dataset), batch_size):
            inputs, batch_targets = dataset.batch(idx)
            prediction = model.forward(inputs, task)
            outputs.append(prediction.data)
            if isinstance(batch_targets, Mapping):
                targets.append(batch_targets[task])
            else:
                targets.append(batch_targets)
    return np.concatenate(outputs, axis=0), np.concatenate(targets, axis=0)


def evaluate_model(
    model: MTLModel,
    tasks: Sequence[TaskSpec],
    data,
    mode: str = SINGLE_INPUT,
    batch_size: int = 256,
) -> dict[str, dict[str, float]]:
    """Evaluate every task's metrics: ``{task: {metric: value}}``.

    ``data`` is an :class:`ArrayDataset` (single-input) or
    ``{task: ArrayDataset}`` (multi-input).
    """
    results: dict[str, dict[str, float]] = {}
    for task in tasks:
        dataset = data[task.name] if mode == MULTI_INPUT else data
        outputs, targets = collect_outputs(model, dataset, task.name, batch_size)
        results[task.name] = {
            metric: fn(outputs, targets) for metric, fn in task.metrics.items()
        }
    return results
