"""Training history container used by Fig. 6 (convergence curves)."""

from __future__ import annotations

import numpy as np

__all__ = ["History"]


class History:
    """Per-step and per-epoch records of a training run."""

    def __init__(self, task_names: list[str]) -> None:
        self.task_names = list(task_names)
        self.step_losses: list[np.ndarray] = []
        self.epoch_losses: list[np.ndarray] = []
        self.epoch_metrics: list[dict[str, dict[str, float]]] = []
        self._consumed = 0

    # ------------------------------------------------------------------
    def record_step(self, losses: np.ndarray) -> None:
        """Append one optimization step's per-task loss values."""
        self.step_losses.append(np.asarray(losses, dtype=np.float64))

    def close_epoch(self, metrics: dict[str, dict[str, float]] | None = None) -> None:
        """Average the step losses since the previous epoch boundary."""
        steps = self.step_losses[self._consumed :]
        if steps:
            self.epoch_losses.append(np.mean(steps, axis=0))
        else:
            self.epoch_losses.append(np.full(len(self.task_names), np.nan))
        self._consumed = len(self.step_losses)
        self.epoch_metrics.append(metrics or {})

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epoch_losses)

    def task_loss_curve(self, task: str) -> np.ndarray:
        """Per-epoch mean loss of one task."""
        index = self.task_names.index(task)
        return np.array([losses[index] for losses in self.epoch_losses])

    def average_loss_curve(self) -> np.ndarray:
        """Per-epoch loss averaged over tasks (Fig. 6d)."""
        return np.array([losses.mean() for losses in self.epoch_losses])

    def final_losses(self) -> dict[str, float]:
        """Last epoch's mean loss per task."""
        if not self.epoch_losses:
            raise RuntimeError("no epochs recorded")
        last = self.epoch_losses[-1]
        return dict(zip(self.task_names, map(float, last)))
