"""Parameter initializers.

All initializers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is seedable end to end — runs in EXPERIMENTS.md are exact
re-runs, not approximate ones.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "kaiming_normal", "zeros", "normal"]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution kernels: (out_channels, in_channels, kh, kw)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(±gain·√(6/(fan_in+fan_out)))."""
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain·√(2/(fan_in+fan_out)))."""
    fan_in, fan_out = _fan(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(±√(6/fan_in)), for ReLU networks."""
    fan_in, _ = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, √(2/fan_in)), for ReLU networks."""
    fan_in, _ = _fan(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initializer (for biases)."""
    return np.zeros(shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain Gaussian initializer (for embeddings)."""
    return rng.normal(0.0, std, size=shape)
