"""Reverse-mode automatic differentiation on numpy arrays.

This module provides :class:`Tensor`, a thin wrapper around ``numpy.ndarray``
that records a dynamic computation graph and supports backpropagation through
it.  It plays the role PyTorch's autograd plays in the original MoCoGrad
implementation: the multi-task trainer calls :meth:`Tensor.backward` once per
task loss to obtain per-task gradients over the shared parameters.

Design notes
------------
- Each operation stores a ``grad_fn`` on its output that maps the upstream
  gradient to a tuple of parent gradients.  During :meth:`Tensor.backward`
  intermediate gradients live in a transient dictionary; only *leaf* tensors
  (parameters, inputs) and tensors marked via :meth:`Tensor.retain_grad`
  accumulate into ``.grad``.  This makes repeated backward passes over a
  shared graph safe — exactly what per-task gradient collection in multi-task
  learning requires.
- Gradients accumulate additively into ``Tensor.grad`` until ``zero_grad``,
  matching the PyTorch convention.
- Broadcasting is fully supported; backward passes reduce gradients back to
  the operand shape via :func:`unbroadcast`.
- ``no_grad`` disables graph construction for evaluation loops and optimizer
  arithmetic.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "backward_multi",
    "register_multi_adjoint",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "unbroadcast",
    "unbroadcast_lead",
    "as_tensor",
    "concat",
    "stack",
    "where",
]


class _GradState(threading.local):
    """Per-thread autograd switches.

    Class attributes double as the defaults a fresh thread observes, so a
    newly spawned thread starts with gradients enabled and inference off
    regardless of what other threads are doing.  Thread-locality matters
    in serving: :mod:`repro.serve` runs one batcher worker per model, and
    each enters :func:`inference_mode` independently — with process-wide
    globals, overlapping enter/exit from two threads can restore a stale
    snapshot and wedge the whole process in inference mode.
    """

    grad_enabled = True
    inference = False


_STATE = _GradState()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (this thread only)."""
    previous = _STATE.grad_enabled
    _STATE.grad_enabled = False
    try:
        yield
    finally:
        _STATE.grad_enabled = previous


@contextlib.contextmanager
def inference_mode():
    """``no_grad`` plus an allocation-lean tensor construction fast path.

    Inside this context every op result skips the full ``Tensor.__init__``
    (no ``np.asarray`` revalidation, no graph bookkeeping at all): outputs
    are bare data carriers with ``requires_grad=False`` and no ``_ctx`` /
    ``_grad_fn`` / ``_prev`` state.  This is the serving forward path —
    see :mod:`repro.serve` — where per-request Python overhead, not numpy
    time, dominates small-batch latency.

    Like :func:`no_grad` the switch is thread-local: entering it on one
    thread (e.g. a serving worker) never affects forwards running on
    other threads of the same process.
    """
    previous = (_STATE.grad_enabled, _STATE.inference)
    _STATE.grad_enabled = False
    _STATE.inference = True
    try:
        yield
    finally:
        _STATE.grad_enabled, _STATE.inference = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (this thread)."""
    return _STATE.grad_enabled


def is_inference_mode() -> bool:
    """Return whether the :func:`inference_mode` fast path is active (this thread)."""
    return _STATE.inference


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def unbroadcast_lead(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Like :func:`unbroadcast`, but preserving a leading root axis.

    ``grad`` has shape ``(R, *broadcast_shape)``; the result has shape
    ``(R, *shape)``.  Used by the batched adjoints of
    :func:`backward_multi`, where axis 0 indexes the backward roots and
    must never be reduced over.
    """
    if grad.shape[1:] == shape:
        return grad
    extra = grad.ndim - 1 - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(1, 1 + extra)))
    axes = tuple(i + 1 for i, dim in enumerate(shape) if dim == 1 and grad.shape[i + 1] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape((grad.shape[0],) + shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (scalar, ndarray or Tensor) to a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_grad_fn", "_prev", "_op", "_retains", "_ctx")

    __array_priority__ = 200  # ensure ndarray op Tensor dispatches here

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._grad_fn: Callable[[np.ndarray], tuple] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self._op = ""
        self._retains = False
        # Op-specific context the batched multi-root adjoints need but
        # cannot recompute from node/parent data (e.g. a reduction axis).
        self._ctx = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._grad_fn is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def retain_grad(self) -> "Tensor":
        """Request gradient accumulation on this (possibly non-leaf) tensor.

        The multi-task trainer uses this on the shared representation to
        collect *feature-level* task gradients (paper §VI-C).
        """
        self._retains = True
        return self

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction / backward
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        if _STATE.inference:
            # Serving fast path: op outputs are normally fresh float64 numpy
            # arrays, so skip __init__'s asarray revalidation and build the
            # bare carrier directly (no graph state to populate either).
            # Non-float64 intermediates (e.g. from integer tabular inputs)
            # still get the __init__ cast so serving dtype matches training.
            out = Tensor.__new__(Tensor)
            if type(data) is np.ndarray and data.dtype == np.float64:
                out.data = data
            else:
                out.data = np.asarray(data, dtype=np.float64)
            out.grad = None
            out.requires_grad = False
            out._grad_fn = None
            out._prev = ()
            out._op = ""
            out._retains = False
            out._ctx = None
            return out
        out = Tensor(data)
        if _STATE.grad_enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(parents)
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor into leaf ``.grad`` buffers.

        Safe to call multiple times on losses sharing subgraphs: gradients of
        intermediate nodes are kept in a transient map, never on the nodes.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        flowing: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            upstream = flowing.pop(id(node), None)
            if upstream is None:
                continue
            if node.is_leaf or node._retains:
                node._accumulate(upstream)
            if node._grad_fn is None:
                continue
            parent_grads = node._grad_fn(upstream)
            for parent, parent_grad in zip(node._prev, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in flowing:
                    flowing[key] = flowing[key] + parent_grad
                else:
                    flowing[key] = parent_grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            a_shape, b_shape = self.data.shape, other.data.shape
            out._grad_fn = lambda g: (unbroadcast(g, a_shape), unbroadcast(g, b_shape))
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            a, b = self, other
            out._grad_fn = lambda g: (
                unbroadcast(g * b.data, a.data.shape),
                unbroadcast(g * a.data, b.data.shape),
            )
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,), "neg")
        if out.requires_grad:
            out._grad_fn = lambda g: (-g,)
        return out

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data - other.data, (self, other), "sub")
        if out.requires_grad:
            a_shape, b_shape = self.data.shape, other.data.shape
            out._grad_fn = lambda g: (unbroadcast(g, a_shape), unbroadcast(-g, b_shape))
        return out

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            a, b = self, other
            out._grad_fn = lambda g: (
                unbroadcast(g / b.data, a.data.shape),
                unbroadcast(-g * a.data / (b.data**2), b.data.shape),
            )
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data**exponent, (self,), "pow")
        if out.requires_grad:
            base = self
            out._ctx = exponent
            out._grad_fn = lambda g: (g * exponent * base.data ** (exponent - 1),)
        return out

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            a, b = self, other

            def grad_fn(g: np.ndarray) -> tuple:
                ad, bd = a.data, b.data
                grad_a = grad_b = None
                if a.requires_grad:
                    if bd.ndim == 1 and ad.ndim == 1:
                        grad_a = g * bd
                    elif bd.ndim == 1:
                        grad_a = g[..., None] * bd
                    elif ad.ndim == 1:
                        grad_a = g @ np.swapaxes(bd, -1, -2)
                        if grad_a.ndim > 1:
                            grad_a = grad_a.sum(axis=tuple(range(grad_a.ndim - 1)))
                    else:
                        grad_a = g @ np.swapaxes(bd, -1, -2)
                    if grad_a.shape != ad.shape:
                        grad_a = unbroadcast(grad_a, ad.shape)
                if b.requires_grad:
                    if ad.ndim == 1 and bd.ndim == 1:
                        grad_b = g * ad
                    elif ad.ndim == 1:
                        grad_b = np.outer(ad, g) if bd.ndim == 2 else None
                        if grad_b is None:
                            raise NotImplementedError("1D @ nD (n>2) backward unsupported")
                    elif bd.ndim == 1:
                        grad_b = (np.swapaxes(ad, -1, -2) @ g[..., None])[..., 0]
                        if grad_b.ndim > 1:
                            grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
                    else:
                        grad_b = np.swapaxes(ad, -1, -2) @ g
                        if grad_b.shape != bd.shape:
                            grad_b = unbroadcast(grad_b, bd.shape)
                return grad_a, grad_b

            out._grad_fn = grad_fn
        return out

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other).__matmul__(self)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential (inputs clipped to ±700 for stability)."""
        out = self._make_child(np.exp(np.clip(self.data, -700.0, 700.0)), (self,), "exp")
        if out.requires_grad:
            out._grad_fn = lambda g: (g * out.data,)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out = self._make_child(np.log(self.data), (self,), "log")
        if out.requires_grad:
            base = self
            out._grad_fn = lambda g: (g / base.data,)
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out = self._make_child(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:
            out._grad_fn = lambda g: (g * (1.0 - out.data**2),)
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically clipped)."""
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out = self._make_child(value, (self,), "sigmoid")
        if out.requires_grad:
            out._grad_fn = lambda g: (g * out.data * (1.0 - out.data),)
        return out

    def relu(self) -> "Tensor":
        """Elementwise max(x, 0)."""
        out = self._make_child(np.maximum(self.data, 0.0), (self,), "relu")
        if out.requires_grad:
            mask = self.data > 0
            out._ctx = mask
            out._grad_fn = lambda g: (g * mask,)
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Elementwise leaky ReLU with the given negative slope."""
        value = np.where(self.data > 0, self.data, negative_slope * self.data)
        out = self._make_child(value, (self,), "leaky_relu")
        if out.requires_grad:
            scale = np.where(self.data > 0, 1.0, negative_slope)
            out._ctx = scale
            out._grad_fn = lambda g: (g * scale,)
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value."""
        out = self._make_child(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            sign = np.sign(self.data)
            out._grad_fn = lambda g: (g * sign,)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high] (gradient zero outside)."""
        out = self._make_child(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:
            mask = (self.data >= low) & (self.data <= high)
            out._ctx = mask
            out._grad_fn = lambda g: (g * mask,)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axes (all by default)."""
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:
            src_shape = self.data.shape
            out._ctx = (axis, keepdims)

            def grad_fn(g: np.ndarray) -> tuple:
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % len(src_shape) for a in axes)
                    shape = [1 if i in axes else d for i, d in enumerate(src_shape)]
                    g = g.reshape(shape)
                return (np.broadcast_to(g, src_shape).copy(),)

            out._grad_fn = grad_fn
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over the given axes (all by default)."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axes; ties split the gradient evenly."""
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,), "max")
        if out.requires_grad:
            src = self.data
            value_keep = self.data.max(axis=axis, keepdims=True)
            mask = src == value_keep
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            out._ctx = (axis, keepdims, mask, counts)

            def grad_fn(g: np.ndarray) -> tuple:
                gg = g
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % src.ndim for a in axes)
                    shape = [1 if i in axes else d for i, d in enumerate(src.shape)]
                    gg = gg.reshape(shape)
                return (np.broadcast_to(gg, src.shape) * mask / counts,)

            out._grad_fn = grad_fn
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over the given axes."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View the data under a new shape (same number of elements)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            src_shape = self.data.shape
            out._grad_fn = lambda g: (g.reshape(src_shape),)
        return out

    def flatten(self, start_axis: int = 0) -> "Tensor":
        """Flatten all axes from ``start_axis`` onward into one."""
        shape = self.data.shape[:start_axis] + (-1,)
        return self.reshape(shape)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes (reversed order when none are given)."""
        if len(axes) == 0:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            inverse = tuple(int(a) for a in np.argsort(axes))
            out._ctx = inverse
            out._grad_fn = lambda g: (g.transpose(inverse),)
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,), "getitem")
        if out.requires_grad:
            src_shape = self.data.shape
            out._ctx = index

            def grad_fn(g: np.ndarray) -> tuple:
                grad = np.zeros(src_shape, dtype=np.float64)
                np.add.at(grad, index, g)
                return (grad,)

            out._grad_fn = grad_fn
        return out

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return ndarray masks)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)


# ----------------------------------------------------------------------
# Multi-root backward: batched adjoints
# ----------------------------------------------------------------------
# Each adjoint maps (node, g) -> per-parent gradients, where g carries a
# leading *root axis*: shape (R, *node.shape) with one row per backward
# root reaching the node.  Returned arrays keep the leading axis, shaped
# (R, *parent.shape) (or None for a constant parent).  This is what lets
# backward_multi run ONE numpy call per node instead of one per root.
def _adj_add(node, g):
    a, b = node._prev
    return unbroadcast_lead(g, a.data.shape), unbroadcast_lead(g, b.data.shape)


def _adj_sub(node, g):
    a, b = node._prev
    return unbroadcast_lead(g, a.data.shape), unbroadcast_lead(-g, b.data.shape)


def _adj_neg(node, g):
    return (-g,)


def _adj_mul(node, g):
    a, b = node._prev
    return (
        unbroadcast_lead(g * b.data, a.data.shape),
        unbroadcast_lead(g * a.data, b.data.shape),
    )


def _adj_div(node, g):
    a, b = node._prev
    return (
        unbroadcast_lead(g / b.data, a.data.shape),
        unbroadcast_lead(-g * a.data / (b.data**2), b.data.shape),
    )


def _adj_pow(node, g):
    exponent = node._ctx
    base = node._prev[0].data
    return (g * exponent * base ** (exponent - 1),)


def _adj_exp(node, g):
    return (g * node.data,)


def _adj_log(node, g):
    return (g / node._prev[0].data,)


def _adj_tanh(node, g):
    return (g * (1.0 - node.data**2),)


def _adj_sigmoid(node, g):
    return (g * node.data * (1.0 - node.data),)


def _adj_relu(node, g):
    return (g * (node._prev[0].data > 0),)


def _adj_leaky_relu(node, g):
    return (g * node._ctx,)


def _adj_abs(node, g):
    return (g * np.sign(node._prev[0].data),)


def _adj_clip(node, g):
    return (g * node._ctx,)


def _adj_matmul(node, g):
    a, b = node._prev
    ad, bd = a.data, b.data
    grad_a = grad_b = None
    if ad.ndim == 2 and bd.ndim == 2:
        # Fast path for Linear layers: collapse the root axis into one big
        # GEMM instead of numpy's per-root batched-matmul loop.
        num_roots = g.shape[0]
        flat = np.ascontiguousarray(g).reshape(-1, g.shape[-1])  # (R*B, M)
        if a.requires_grad:
            grad_a = (flat @ bd.T).reshape(num_roots, *ad.shape)
        if b.requires_grad:
            # ad.T (N, B) @ g as (B, R*M) -> (N, R, M) -> (R, N, M)
            swapped = g.transpose(1, 0, 2).reshape(ad.shape[0], -1)
            grad_b = (ad.T @ swapped).reshape(bd.shape[0], num_roots, bd.shape[1])
            grad_b = grad_b.transpose(1, 0, 2)
        return grad_a, grad_b
    if a.requires_grad:
        if bd.ndim == 1:
            grad_a = g[..., None] * bd
        elif ad.ndim == 1:
            grad_a = g @ np.swapaxes(bd, -1, -2)
            if grad_a.ndim > 2:
                grad_a = grad_a.sum(axis=tuple(range(1, grad_a.ndim - 1)))
        else:
            grad_a = g @ np.swapaxes(bd, -1, -2)
            if grad_a.shape[1:] != ad.shape:
                grad_a = unbroadcast_lead(grad_a, ad.shape)
    if b.requires_grad:
        if ad.ndim == 1 and bd.ndim == 1:
            grad_b = g[..., None] * ad
        elif ad.ndim == 1:
            if bd.ndim != 2:
                raise NotImplementedError("1D @ nD (n>2) backward unsupported")
            grad_b = ad[None, :, None] * g[:, None, :]
        elif bd.ndim == 1:
            grad_b = (np.swapaxes(ad, -1, -2) @ g[..., None])[..., 0]
            if grad_b.ndim > 2:
                grad_b = grad_b.sum(axis=tuple(range(1, grad_b.ndim - 1)))
        else:
            grad_b = np.swapaxes(ad, -1, -2) @ g
            if grad_b.shape[1:] != bd.shape:
                grad_b = unbroadcast_lead(grad_b, bd.shape)
    return grad_a, grad_b


def _lead_keepdims(g, axis, src_ndim):
    """Reshape ``(R, *reduced)`` to ``(R, *keepdims-shape)`` for ``axis``."""
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = tuple(a % src_ndim for a in axes)
    shape = [g.shape[0]]
    pos = 1
    for i in range(src_ndim):
        if i in axes:
            shape.append(1)
        else:
            shape.append(g.shape[pos])
            pos += 1
    return g.reshape(shape), axes


def _adj_sum(node, g):
    axis, keepdims = node._ctx
    src_shape = node._prev[0].data.shape
    if not keepdims:
        if axis is None:
            g = g.reshape((g.shape[0],) + (1,) * len(src_shape))
        else:
            g, _ = _lead_keepdims(g, axis, len(src_shape))
    return (np.broadcast_to(g, (g.shape[0],) + src_shape).copy(),)


def _adj_max(node, g):
    axis, keepdims, mask, counts = node._ctx
    src_shape = node._prev[0].data.shape
    if not keepdims:
        if axis is None:
            g = g.reshape((g.shape[0],) + (1,) * len(src_shape))
        else:
            g, _ = _lead_keepdims(g, axis, len(src_shape))
    return (np.broadcast_to(g, (g.shape[0],) + src_shape) * mask / counts,)


def _adj_reshape(node, g):
    return (g.reshape((g.shape[0],) + node._prev[0].data.shape),)


def _adj_transpose(node, g):
    inverse = node._ctx
    return (g.transpose((0,) + tuple(a + 1 for a in inverse)),)


def _adj_getitem(node, g):
    index = node._ctx
    src_shape = node._prev[0].data.shape
    grad = np.zeros((g.shape[0],) + src_shape, dtype=np.float64)
    full_index = (slice(None),) + (index if isinstance(index, tuple) else (index,))
    np.add.at(grad, full_index, g)
    return (grad,)


def _adj_concat(node, g):
    axis, offsets = node._ctx
    ndim = g.ndim
    grads = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        slicer: list = [slice(None)] * ndim
        slicer[axis + 1] = slice(int(start), int(stop))
        grads.append(g[tuple(slicer)])
    return tuple(grads)


def _adj_stack(node, g):
    axis, n = node._ctx
    return tuple(np.squeeze(piece, axis=axis + 1) for piece in np.split(g, n, axis=axis + 1))


def _adj_where(node, g):
    condition = node._ctx
    a, b = node._prev
    return (
        unbroadcast_lead(g * condition, a.data.shape),
        unbroadcast_lead(g * (~condition), b.data.shape),
    )


#: op name -> batched adjoint.  Ops missing here (custom grad_fns from
#: other modules) fall back to one ``grad_fn`` call per root — still
#: correct, just not batched.
_MULTI_ADJOINTS: dict[str, Callable] = {
    "add": _adj_add,
    "sub": _adj_sub,
    "neg": _adj_neg,
    "mul": _adj_mul,
    "div": _adj_div,
    "pow": _adj_pow,
    "exp": _adj_exp,
    "log": _adj_log,
    "tanh": _adj_tanh,
    "sigmoid": _adj_sigmoid,
    "relu": _adj_relu,
    "leaky_relu": _adj_leaky_relu,
    "abs": _adj_abs,
    "clip": _adj_clip,
    "matmul": _adj_matmul,
    "sum": _adj_sum,
    "max": _adj_max,
    "reshape": _adj_reshape,
    "transpose": _adj_transpose,
    "getitem": _adj_getitem,
    "concat": _adj_concat,
    "stack": _adj_stack,
    "where": _adj_where,
}


def register_multi_adjoint(op: str, adjoint: Callable) -> None:
    """Register a batched adjoint for a custom op (see ``_MULTI_ADJOINTS``).

    ``adjoint(node, g)`` receives the output tensor and a gradient with a
    leading root axis ``(R, *node.shape)`` and must return one array per
    parent, each keeping the leading axis.  Modules defining their own
    ``grad_fn`` (e.g. ``pad2d`` in :mod:`repro.nn.conv`) register here so
    multi-root backward stays batched through them.
    """
    _MULTI_ADJOINTS[op] = adjoint


# ----------------------------------------------------------------------
# Multi-root backward
# ----------------------------------------------------------------------
def backward_multi(
    roots: Sequence[Tensor],
    grads: Sequence[np.ndarray | None] | None = None,
    per_root: Sequence[Tensor] = (),
) -> list[list[np.ndarray | None]]:
    """Backpropagate from several roots in ONE walk over their union graph.

    Equivalent to calling ``root.backward()`` once per root (K topological
    sorts, K traversals, and K numpy calls per shared node) but performs a
    single topological sort and a single traversal where every node carries
    a ``(R, ...)``-leading-axis gradient buffer — one row per root that
    reaches the node — and each op's batched adjoint runs ONCE over all
    rows.  Per-root sparsity is automatic: nodes private to one task's loss
    (a task head's subgraph) only ever carry and propagate that root's row,
    while shared-trunk nodes carry one row per task.

    Parameters
    ----------
    roots:
        The K root tensors (e.g. per-task losses); each must require grad.
    grads:
        Optional seed gradients, one per root (``None`` entries mean ones,
        like :meth:`Tensor.backward`).
    per_root:
        Tensors whose gradients must be kept *separated by root* instead of
        summed.  Their ``.grad`` buffers are left untouched; the separated
        gradients are returned instead.

    Returns
    -------
    A list parallel to ``per_root``: entry ``i`` is a K-slot list where slot
    ``k`` holds d(roots[k])/d(per_root[i]) — or ``None`` when root ``k``'s
    graph never reaches that tensor (a zero gradient).

    Every other leaf (and ``retain_grad`` tensor) accumulates the *sum over
    roots* into ``.grad``, exactly as K sequential backward calls would.
    """
    roots = list(roots)
    if not roots:
        raise ValueError("backward_multi needs at least one root")
    for root in roots:
        if not root.requires_grad:
            raise RuntimeError("called backward_multi() on a tensor that does not require grad")
    if grads is None:
        seed_list: list[np.ndarray | None] = [None] * len(roots)
    else:
        seed_list = list(grads)
        if len(seed_list) != len(roots):
            raise ValueError(f"got {len(seed_list)} seed grads for {len(roots)} roots")
    seeds: list[np.ndarray] = []
    for root, seed in zip(roots, seed_list):
        if seed is None:
            seeds.append(np.ones_like(root.data))
        else:
            seed = np.asarray(seed, dtype=np.float64)
            if seed.shape != root.data.shape:
                raise ValueError(
                    f"grad shape {seed.shape} does not match tensor shape {root.data.shape}"
                )
            seeds.append(seed.copy())

    # One topological sort over the union graph of all roots.  The DFS is
    # identical to Tensor.backward's except every root is pushed up front;
    # the visited set merges the K subgraphs into one ordering.
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False) for root in reversed(roots)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._prev:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))

    # Per-node gradient buffer: either ``(ids, stack)`` — ids a sorted
    # tuple of root indices, stack of shape (len(ids), *node.shape) — or a
    # plain {root: grad} dict while contributions with differing root sets
    # are still merging.  Buffers are never mutated in place, so adjoint
    # outputs that alias each other (e.g. ``x + x``) stay correct.
    buffers: dict[int, object] = {}

    def _merge(parent: Tensor, ids: tuple[int, ...], stack_arr: np.ndarray) -> None:
        key = id(parent)
        existing = buffers.get(key)
        if existing is None:
            buffers[key] = (ids, stack_arr)
        elif type(existing) is tuple and existing[0] == ids:
            buffers[key] = (ids, existing[1] + stack_arr)
        else:
            if type(existing) is tuple:
                merged = dict(zip(existing[0], existing[1]))
            else:
                merged = existing
            for position, k in enumerate(ids):
                row = stack_arr[position]
                merged[k] = merged[k] + row if k in merged else row
            buffers[key] = merged

    for k, (root, seed) in enumerate(zip(roots, seeds)):
        _merge(root, (k,), seed[None])

    separated: dict[int, list[np.ndarray | None]] = {
        id(t): [None] * len(roots) for t in per_root
    }

    for node in reversed(topo):
        buffer = buffers.pop(id(node), None)
        if buffer is None:
            continue
        if type(buffer) is tuple:
            ids, grad_stack = buffer
        else:
            ids = tuple(sorted(buffer))
            grad_stack = (
                buffer[ids[0]][None] if len(ids) == 1 else np.stack([buffer[i] for i in ids])
            )
        out_slots = separated.get(id(node))
        if out_slots is not None:
            for position, k in enumerate(ids):
                row = grad_stack[position]
                out_slots[k] = row if out_slots[k] is None else out_slots[k] + row
        elif node._grad_fn is None or node._retains:
            node._accumulate(grad_stack[0] if len(ids) == 1 else grad_stack.sum(axis=0))
        grad_fn = node._grad_fn
        if grad_fn is None:
            continue
        prev = node._prev
        adjoint = _MULTI_ADJOINTS.get(node._op)
        if adjoint is not None and len(ids) > 1:
            parent_stacks = adjoint(node, grad_stack)
            for parent, parent_stack in zip(prev, parent_stacks):
                if parent_stack is None or not parent.requires_grad:
                    continue
                _merge(parent, ids, parent_stack)
        else:
            # Single active root, or an op without a batched adjoint: call
            # the reference grad_fn once per row.
            for position, k in enumerate(ids):
                parent_grads = grad_fn(grad_stack[position])
                for parent, parent_grad in zip(prev, parent_grads):
                    if parent_grad is None or not parent.requires_grad:
                        continue
                    _merge(parent, (k,), parent_grad[None])
    return [separated[id(t)] for t in per_root]


# ----------------------------------------------------------------------
# Free functions operating on collections of tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors, "concat")
    if out.requires_grad:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        ndim = data.ndim
        out._ctx = (axis % ndim, offsets)

        def grad_fn(g: np.ndarray) -> tuple:
            grads = []
            for start, stop in zip(offsets[:-1], offsets[1:]):
                slicer: list = [slice(None)] * ndim
                slicer[axis] = slice(int(start), int(stop))
                grads.append(g[tuple(slicer)])
            return tuple(grads)

        out._grad_fn = grad_fn
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors, "stack")
    if out.requires_grad:
        n = len(tensors)
        out._ctx = (axis % data.ndim, n)

        def grad_fn(g: np.ndarray) -> tuple:
            return tuple(np.squeeze(piece, axis=axis) for piece in np.split(g, n, axis=axis))

        out._grad_fn = grad_fn
    return out


def where(condition: np.ndarray, a, b) -> Tensor:
    """Differentiable selection ``condition ? a : b`` (condition is fixed)."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)
    out = a._make_child(data, (a, b), "where")
    if out.requires_grad:
        a_shape, b_shape = a.data.shape, b.data.shape
        out._ctx = condition
        out._grad_fn = lambda g: (
            unbroadcast(g * condition, a_shape),
            unbroadcast(g * (~condition), b_shape),
        )
    return out
