"""Core neural network layers: Linear, Embedding, normalization, dropout.

Every layer takes an explicit ``numpy.random.Generator`` for initialization
(and, for Dropout, for mask sampling) so training runs are reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import init as init_module
from .module import Module, ModuleList, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "Identity",
    "MLP",
]


class Linear(Module):
    """Affine transform ``y = x W^T + b`` over the last input axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_module.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init_module.normal((num_embeddings, embedding_dim), rng, std=0.05))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim))
        self.beta = Parameter(np.zeros(normalized_dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            variance = (centered * centered).mean(axis=0, keepdims=True)
            normalized = centered / (variance + self.eps).sqrt()
        else:
            normalized = (x - self.running_mean) / np.sqrt(self.running_var + self.eps)
        return normalized * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        from .functional import gelu

        return gelu(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with configurable hidden widths.

    ``hidden`` lists the hidden layer sizes; an empty list yields a single
    linear map.  The activation defaults to ReLU, matching the task-shared
    MLPs used for the AliExpress experiments in the paper.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: Callable[[], Module] = ReLU,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        layers: list[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng))
            layers.append(activation())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng))
            previous = width
        layers.append(Linear(previous, out_features, rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
