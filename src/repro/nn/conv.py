"""Convolutional layers for the dense-prediction experiments.

The paper runs NYUv2/CityScapes with ResNet-50 + ASPP; this substrate
provides the same structural roles — a shared convolutional encoder and
per-task dense decoders — at laptop scale.  Convolution is implemented as
im2col + matmul over the existing autograd primitives, so the backward pass
is derived automatically and covered by the gradient-check tests.

Input layout is ``(batch, channels, height, width)`` throughout.
"""

from __future__ import annotations

import numpy as np

from . import init as init_module
from .module import Module, Parameter
from .tensor import Tensor, register_multi_adjoint

__all__ = ["pad2d", "Conv2d", "MaxPool2d", "AvgPool2d", "UpsampleNearest", "GlobalAvgPool2d"]


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial axes symmetrically."""
    if not isinstance(x, Tensor):
        x = Tensor(np.asarray(x, dtype=np.float64))
    if padding == 0:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    data = np.pad(x.data, pad_width)
    out = x._make_child(data, (x,), "pad2d")
    if out.requires_grad:
        p = padding
        out._ctx = p
        out._grad_fn = lambda g: (g[:, :, p:-p, p:-p],)
    return out


def _multi_adj_pad2d(node, g):
    p = node._ctx
    return (g[:, :, :, p:-p, p:-p],)


register_multi_adjoint("pad2d", _multi_adj_pad2d)


def _im2col_indices(
    channels: int, height: int, width: int, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    c_idx = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    i0 = np.tile(np.repeat(np.arange(kernel), kernel), channels).reshape(-1, 1)
    j0 = np.tile(np.arange(kernel), kernel * channels).reshape(-1, 1)
    i1 = stride * np.repeat(np.arange(out_h), out_w).reshape(1, -1)
    j1 = stride * np.tile(np.arange(out_w), out_h).reshape(1, -1)
    return c_idx, i0 + i1, j0 + j1, out_h, out_w


class Conv2d(Module):
    """2D convolution with square kernels via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init_module.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects (N, C, H, W); got shape {x.shape}")
        x = pad2d(x, self.padding)
        batch, channels, height, width = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {channels}")
        c_idx, i_idx, j_idx, out_h, out_w = _im2col_indices(
            channels, height, width, self.kernel_size, self.stride
        )
        # (N, C*k*k, out_h*out_w)
        cols = x[:, c_idx, i_idx, j_idx]
        weight_flat = self.weight.reshape(self.out_channels, -1)
        out = weight_flat @ cols  # (N, out_channels, out_h*out_w)
        out = out.reshape(batch, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"spatial dims {height}x{width} not divisible by pool size {k}")
        reshaped = x.reshape(batch, channels, height // k, k, width // k, k)
        return reshaped.max(axis=(3, 5))


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(f"spatial dims {height}x{width} not divisible by pool size {k}")
        reshaped = x.reshape(batch, channels, height // k, k, width // k, k)
        return reshaped.mean(axis=(3, 5))


class GlobalAvgPool2d(Module):
    """Average over both spatial axes, returning ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class UpsampleNearest(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, scale: int) -> None:
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        rows = np.repeat(np.arange(height), self.scale)
        cols = np.repeat(np.arange(width), self.scale)
        return x[:, :, rows][:, :, :, cols]
