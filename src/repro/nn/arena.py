"""Contiguous parameter arena: one flat buffer behind many parameters.

Gradient-manipulation MTL spends its life converting between the per-parameter
world (autograd accumulates into ``param.grad``; optimizers update
``param.data``) and the flat-vector world (balancers consume and produce
``(K, d)`` gradient matrices over the shared parameters).  Before this module
every conversion paid P per-parameter copies, and every optimizer step paid P
tiny BLAS-1 calls.

:class:`ParameterArena` removes the conversion entirely: it packs a list of
parameters into ONE contiguous ``(d,)`` data buffer and ONE contiguous
``(d,)`` grad buffer, then rebinds each ``Parameter``'s ``.data`` and
``.grad`` to reshaped *views* into those buffers.  Afterwards:

- autograd keeps accumulating into ``param.grad`` as before — the writes land
  in the arena's grad buffer, so the flat gradient vector is always already
  materialized;
- ``grad_vector`` / ``set_grad_from_vector`` / ``parameter_vector`` /
  ``set_parameters_from_vector`` (see :mod:`repro.nn.utils`) detect a
  contiguous arena segment and collapse to a single slice view or one bulk
  copy;
- ``zero_grad`` over the whole parameter set is one ``fill(0.0)``;
- optimizers update ``arena.data`` / ``arena.grad`` directly with a handful
  of fused in-place vector ops (``step_mode="flat"`` in
  :mod:`repro.nn.optim`).

Packing contract and view invariants
------------------------------------
- Parameters are packed in the order given (duplicates collapse to their
  first occurrence); each occupies ``[offset, offset + size)`` of both
  buffers, so a sequence of parameters that is consecutive in packing order
  maps to one contiguous slice.
- After packing, ``param.data`` and ``param.grad`` are always views into the
  arena (``param.grad`` is never ``None``; a cleared gradient is a
  zero-filled view).  Code must mutate them in place (``param.data[...] =``)
  rather than rebinding the attributes; the in-tree mutation sites
  (``Module.load_state_dict``, the :mod:`repro.nn.utils` setters and
  ``Parameter.zero_grad``) already do.
- A parameter cannot be packed when it is already bound to another arena
  (rebinding would silently detach the first arena's views) or when its data
  is not a float64 array (the arena buffer is float64 and a cast would break
  the view identity); both raise ``ValueError``.  Call :meth:`unpack` first
  to release a parameter from its arena.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["ParameterArena", "packed_segment"]


def _check_external_buffer(name: str, buf: np.ndarray, size: int) -> np.ndarray:
    """Validate an externally provided arena buffer (no copies, no casts)."""
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"{name} buffer must be an ndarray, got {type(buf).__name__}")
    if buf.dtype != np.float64:
        raise ValueError(f"{name} buffer must be float64, got {buf.dtype}")
    if buf.ndim != 1 or not buf.flags.c_contiguous:
        raise ValueError(f"{name} buffer must be a contiguous (d,) vector")
    if buf.size != size:
        raise ValueError(f"{name} buffer has length {buf.size}; packed size is {size}")
    return buf


class ParameterArena:
    """Pack parameters into contiguous flat data/grad buffers (as views).

    Parameters
    ----------
    parameters:
        The parameters to pack, in packing order.  Duplicates (by identity)
        are collapsed to their first occurrence.  Values and any existing
        gradients are preserved through packing.
    data, grad:
        Optional externally provided flat float64 C-contiguous buffers of
        exactly the packed length ``d`` — e.g. numpy views over
        ``multiprocessing.shared_memory`` blocks.  When given, the arena
        packs *into* them instead of allocating, so every ``param.data`` /
        ``param.grad`` view aliases the external memory and in-place
        optimizer steps are visible to any process mapping the same block.
        Pass both or neither.
    load:
        Only meaningful with external buffers.  ``False`` (default, the
        parent side) copies the parameters' current values and gradients
        into the buffers; ``True`` (the worker side) adopts the buffers'
        existing contents as authoritative, discarding the parameters'
        own values — the replica snaps to whatever the parent published.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        data: np.ndarray | None = None,
        grad: np.ndarray | None = None,
        load: bool = False,
    ) -> None:
        seen: set[int] = set()
        params: list[Parameter] = []
        for param in parameters:
            if not isinstance(param, Parameter):
                raise TypeError(f"arena can only pack Parameters, got {type(param).__name__}")
            if id(param) in seen:
                continue
            seen.add(id(param))
            params.append(param)
        if not params:
            raise ValueError("cannot build an arena over an empty parameter list")
        for param in params:
            if param._arena is not None:
                raise ValueError("parameter is already packed into another arena")
            if param.data.dtype != np.float64:
                raise ValueError(f"cannot pack non-float64 parameter (dtype {param.data.dtype})")

        self.parameters: list[Parameter] = params
        #: flat start offset of each parameter, parallel to ``parameters``
        self.offsets: list[int] = []
        total = 0
        for param in params:
            self.offsets.append(total)
            total += param.size
        #: total packed length ``d``
        self.size: int = total
        if (data is None) != (grad is None):
            raise ValueError("pass both data and grad buffers, or neither")
        external = data is not None
        if external:
            data = _check_external_buffer("data", data, total)
            grad = _check_external_buffer("grad", grad, total)
        else:
            if load:
                raise ValueError("load=True requires external data/grad buffers")
            data = np.empty(total)
            grad = np.zeros(total)
        #: the contiguous ``(d,)`` value buffer (parameter ``.data`` are views)
        self.data: np.ndarray = data
        #: the contiguous ``(d,)`` gradient buffer (parameter ``.grad`` are views)
        self.grad: np.ndarray = grad
        for param, offset in zip(params, self.offsets):
            shape = param.data.shape
            data_view = self.data[offset : offset + param.size].reshape(shape)
            grad_view = self.grad[offset : offset + param.size].reshape(shape)
            if not load:
                data_view[...] = param.data
                if external:
                    grad_view[...] = 0.0 if param.grad is None else param.grad
                elif param.grad is not None:
                    grad_view[...] = param.grad
            param.data = data_view
            param.grad = grad_view
            param._arena = self
            param._arena_offset = offset

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __repr__(self) -> str:
        return f"ParameterArena(parameters={len(self.parameters)}, size={self.size})"

    def zero_grad(self) -> None:
        """Clear every packed gradient with a single buffer fill."""
        self.grad.fill(0.0)

    def segment(self, parameters: Sequence[Parameter]) -> slice | None:
        """The contiguous arena slice covered by ``parameters``, if any.

        Returns a ``slice`` when the given parameters are all packed in this
        arena and consecutive in packing order (so their flat concatenation
        *is* one slice of the buffers); ``None`` otherwise.
        """
        seg = packed_segment(parameters)
        if seg is None or seg[0] is not self:
            return None
        return seg[1]

    def data_segment(self, parameters: Sequence[Parameter]) -> np.ndarray | None:
        """Contiguous flat *view* of the given parameters' values, or None."""
        sl = self.segment(parameters)
        return None if sl is None else self.data[sl]

    def grad_segment(self, parameters: Sequence[Parameter]) -> np.ndarray | None:
        """Contiguous flat *view* of the given parameters' gradients, or None."""
        sl = self.segment(parameters)
        return None if sl is None else self.grad[sl]

    def unpack(self) -> None:
        """Release every parameter back to standalone (copied) arrays.

        After this the arena's buffers are detached from the parameters and
        the parameters may be packed into a new arena.
        """
        for param in self.parameters:
            param.data = param.data.copy()
            param.grad = None if param.grad is None else param.grad.copy()
            param._arena = None
            param._arena_offset = 0


def packed_segment(
    parameters: Sequence[Parameter],
) -> tuple[ParameterArena, slice] | None:
    """Detect a contiguous arena segment behind a parameter sequence.

    Returns ``(arena, slice)`` when every parameter is packed in the *same*
    arena and they are consecutive in packing order starting at the first
    parameter's offset; ``None`` otherwise.  This is the dispatch check the
    :mod:`repro.nn.utils` vector helpers use to replace per-parameter
    gather/scatter loops with one slice — it is pure Python bookkeeping
    (no array ops), O(len(parameters)).
    """
    if not parameters:
        return None
    first = parameters[0]
    if not isinstance(first, Parameter):
        return None
    arena = first._arena
    if arena is None:
        return None
    start = first._arena_offset
    expected = start
    for param in parameters:
        if not isinstance(param, Parameter) or param._arena is not arena:
            return None
        if param._arena_offset != expected:
            return None
        expected += param.size
    return arena, slice(start, expected)
