"""Model checkpoint serialization to ``.npz`` files.

A production library needs durable checkpoints; this stores a module's
:meth:`~repro.nn.module.Module.state_dict` (name → ndarray) plus optional
metadata in a single compressed numpy archive.

Checkpoints are arena-transparent: ``state_dict`` copies values out of any
:class:`~repro.nn.arena.ParameterArena` views, and ``load_state_dict``
writes restored values *through* packed parameters' views (never rebinding
them), so a save/load round-trip survives packing — the restored model keeps
its contiguous buffers and every optimizer flat path stays valid.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_state"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(model: Module, path, metadata: dict | None = None) -> Path:
    """Write the model's parameters (and JSON-serializable metadata) to ``path``.

    Crash-safe: the archive is written to a temp file in the destination
    directory, fsynced, then renamed over ``path`` — a crash mid-write
    leaves any previous checkpoint intact and never a torn file under the
    final name (same idiom as ``ShardCache.store``).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY!r}")
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_state(path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint file; returns ``(state_dict, metadata)``."""
    with np.load(Path(path)) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(archive[key].tobytes().decode("utf-8"))
            else:
                state[key] = archive[key]
    return state, metadata


def load_checkpoint(model: Module, path) -> dict:
    """Restore a model in place from ``path``; returns the stored metadata."""
    state, metadata = load_state(path)
    model.load_state_dict(state)
    return metadata
