"""``repro.nn`` — numpy-backed neural network substrate.

A minimal PyTorch-like stack (autograd tensor, modules, layers, optimizers)
that the MoCoGrad reproduction is built on.  See ``tensor.py`` for the
autodiff engine and DESIGN.md for why this substrate exists.
"""

from . import functional, init
from .attention import MultiHeadSelfAttention, TransformerBlock
from .conv import (
    AvgPool2d,
    Conv2d,
    GlobalAvgPool2d,
    MaxPool2d,
    UpsampleNearest,
    pad2d,
)
from .graph import GraphConv, GraphReadout, normalize_adjacency
from .layers import (
    MLP,
    BatchNorm1d,
    Dropout,
    Embedding,
    GELU,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .arena import ParameterArena, packed_segment
from .module import Module, ModuleList, Parameter
from .optim import Adam, AdaGrad, Optimizer, RMSProp, SGD
from .schedulers import CosineAnnealing, InversePower, InverseSqrt, Scheduler, StepDecay
from .serialization import load_checkpoint, load_state, save_checkpoint
from .tensor import (
    Tensor,
    as_tensor,
    backward_multi,
    concat,
    register_multi_adjoint,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    stack,
    where,
)
from .utils import (
    clip_grad_norm,
    grad_vector,
    grad_vector_from_slots,
    parameter_vector,
    set_grad_from_vector,
    set_parameters_from_vector,
)

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "backward_multi",
    "register_multi_adjoint",
    "concat",
    "stack",
    "where",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "Module",
    "ModuleList",
    "Parameter",
    "ParameterArena",
    "packed_segment",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "GELU",
    "Identity",
    "MLP",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "UpsampleNearest",
    "pad2d",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "GraphConv",
    "GraphReadout",
    "normalize_adjacency",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "RMSProp",
    "Scheduler",
    "StepDecay",
    "CosineAnnealing",
    "InversePower",
    "InverseSqrt",
    "save_checkpoint",
    "load_checkpoint",
    "load_state",
    "grad_vector",
    "grad_vector_from_slots",
    "set_grad_from_vector",
    "parameter_vector",
    "set_parameters_from_vector",
    "clip_grad_norm",
]
