"""Graph neural network layers for the QM9 experiments.

The paper uses graph convolutional shared layers on QM9.  This module
implements a Kipf-&-Welling-style GCN operating on *dense, padded* batches:
node features ``(batch, nodes, features)`` together with symmetric-normalized
adjacency matrices ``(batch, nodes, nodes)`` that already include self loops.
Padded nodes carry zero rows/columns and a node mask.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["normalize_adjacency", "GraphConv", "GraphReadout"]


def normalize_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Return the symmetric normalization ``D^-1/2 (A + I) D^-1/2``.

    Accepts a single ``(n, n)`` matrix or a batch ``(b, n, n)``.  Rows/columns
    that are entirely zero (padding) stay zero.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    single = adjacency.ndim == 2
    if single:
        adjacency = adjacency[None]
    batch, nodes, _ = adjacency.shape
    if add_self_loops:
        # Only add self loops to real nodes (nodes with any connectivity or
        # nonzero degree after the loop); padding rows stay zero.
        real = (adjacency.sum(axis=2) > 0) | (adjacency.sum(axis=1) > 0)
        eye = np.zeros_like(adjacency)
        idx = np.arange(nodes)
        for b in range(batch):
            eye[b, idx[real[b]], idx[real[b]]] = 1.0
        adjacency = adjacency + eye
    degree = adjacency.sum(axis=2)
    inv_sqrt = np.zeros_like(degree)
    positive = degree > 0
    inv_sqrt[positive] = degree[positive] ** -0.5
    normalized = adjacency * inv_sqrt[:, :, None] * inv_sqrt[:, None, :]
    return normalized[0] if single else normalized


class GraphConv(Module):
    """One GCN layer: ``H' = act(Â H W)`` with ``Â`` precomputed."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)

    def forward(self, node_features: Tensor, adjacency: Tensor | np.ndarray) -> Tensor:
        if not isinstance(adjacency, Tensor):
            adjacency = Tensor(adjacency)
        propagated = adjacency @ node_features
        return self.linear(propagated)


class GraphReadout(Module):
    """Masked mean-pool node features into one graph embedding.

    ``node_mask`` marks real (non-padding) nodes; the mean runs only over
    real nodes so padding does not dilute the embedding.
    """

    def forward(self, node_features: Tensor, node_mask: np.ndarray) -> Tensor:
        mask = np.asarray(node_mask, dtype=np.float64)[..., None]  # (B, N, 1)
        counts = np.maximum(mask.sum(axis=1), 1.0)  # (B, 1)
        summed = (node_features * Tensor(mask)).sum(axis=1)
        return summed * Tensor(1.0 / counts)
