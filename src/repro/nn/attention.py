"""Self-attention blocks.

Used by the BST-style (Behaviour Sequence Transformer) shared encoder for
the MovieLens experiments and by MTAN-style attention gating.  Implements
standard scaled dot-product multi-head self-attention over sequences laid
out as ``(batch, sequence, features)``.
"""

from __future__ import annotations

import numpy as np

from .functional import softmax
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "TransformerBlock"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng)
        self.key = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)
        self.out = Linear(dim, dim, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        weights = softmax(scores, axis=-1)
        attended = weights @ v  # (B, H, S, Dh)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(merged)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + position-wise MLP."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        mlp_ratio: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, num_heads, rng)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, dim * mlp_ratio, rng)
        self.fc2 = Linear(dim * mlp_ratio, dim, rng)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        hidden = self.fc1(self.norm2(x)).relu()
        if self.dropout is not None:
            hidden = self.dropout(hidden)
        return x + self.fc2(hidden)
