"""First-order optimizers: SGD (with momentum), Adam, AdaGrad, RMSProp.

These are the optimizers the paper compares against for convergence-rate
purposes (§IV-C, Corollary 1).  All updates run under ``no_grad`` and mutate
parameter data in place.

Note the separation of concerns in this reproduction: gradient *balancers*
(MoCoGrad, PCGrad, …) combine per-task gradients into one joint gradient,
which the trainer writes into ``param.grad``; the optimizer then consumes
``param.grad`` exactly as in single-task training.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter
from .tensor import no_grad

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "RMSProp"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the parameters' current gradients."""
        self.step_count += 1
        with no_grad():
            self._step()

    def _step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional heavy-ball momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad (Duchi et al., 2011)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-2, eps: float = 1e-10) -> None:
        super().__init__(parameters, lr)
        self.eps = eps
        self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulator):
            if param.grad is None:
                continue
            acc += param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton, 2012)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self._avg = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, avg in zip(self.parameters, self._avg):
            if param.grad is None:
                continue
            avg *= self.alpha
            avg += (1.0 - self.alpha) * param.grad**2
            param.data -= self.lr * param.grad / (np.sqrt(avg) + self.eps)
