"""First-order optimizers: SGD (with momentum), Adam, AdaGrad, RMSProp.

These are the optimizers the paper compares against for convergence-rate
purposes (§IV-C, Corollary 1).  All updates run under ``no_grad`` and mutate
parameter data in place.

Note the separation of concerns in this reproduction: gradient *balancers*
(MoCoGrad, PCGrad, …) combine per-task gradients into one joint gradient,
which the trainer writes into ``param.grad``; the optimizer then consumes
``param.grad`` exactly as in single-task training.

Step modes
----------
Every optimizer runs in one of two numerically equivalent modes:

- ``step_mode="loop"`` — the reference oracle: iterate the parameter list and
  update each ``param.data`` from its ``param.grad`` with per-parameter
  numpy calls.  This is the only mode available for plain parameter lists.
- ``step_mode="flat"`` — the fast path for parameters packed into a
  :class:`~repro.nn.arena.ParameterArena` (or any contiguous arena segment):
  optimizer state (``velocity``, ``m``, ``v``, accumulators) lives in single
  ``(d,)`` arrays and the whole update is a handful of fused in-place
  vector ops over the arena's flat data/grad buffers, using two preallocated
  ``(d,)`` scratch buffers — zero d-length allocations per step (no
  ``grad**2``, bias-correction, or weight-decay temporaries).

``step_mode="auto"`` (the default) selects ``flat`` whenever the parameters
form a contiguous arena segment and ``loop`` otherwise.  Both modes execute
the *same elementwise operation sequence*, so flat-vs-loop trajectories are
bitwise identical; the loop kernels are kept as the oracle the equivalence
suite pins the flat kernels against.

One behavioural difference: the loop mode skips parameters whose ``grad`` is
``None`` (only possible for unpacked parameters — packed parameters always
hold a zero-filled arena view), while the flat mode updates the whole buffer.
Under an arena both modes see identical (never-``None``) gradients.

Adam's bias correction is folded into scalar coefficients
(``alpha_t = lr·sqrt(1−β₂ᵗ)/(1−β₁ᵗ)``, ``eps_t = eps·sqrt(1−β₂ᵗ)``) on both
paths, eliminating the ``m_hat``/``v_hat`` d-length temporaries of the
textbook form while staying within 1e-12 of it.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .arena import ParameterArena, packed_segment
from .module import Parameter
from .tensor import no_grad

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "RMSProp"]


class Optimizer:
    """Base optimizer over an explicit parameter list or a parameter arena.

    Parameters
    ----------
    parameters:
        Either a sequence of :class:`~repro.nn.module.Parameter` or a
        :class:`~repro.nn.arena.ParameterArena`.  A sequence whose members
        form a contiguous arena segment is treated like the arena itself.
    lr:
        Learning rate (must be positive).
    step_mode:
        ``"auto"`` (default: flat when arena-packed, loop otherwise),
        ``"flat"`` (requires arena-packed parameters) or ``"loop"`` (always
        available; the reference oracle).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter] | ParameterArena,
        lr: float,
        step_mode: str = "auto",
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if step_mode not in ("auto", "flat", "loop"):
            raise ValueError("step_mode must be 'auto', 'flat' or 'loop'")
        if isinstance(parameters, ParameterArena):
            self.arena: ParameterArena | None = parameters
            self.parameters = list(parameters.parameters)
            segment = (parameters, slice(0, parameters.size))
        else:
            self.parameters = list(parameters)
            segment = packed_segment(self.parameters)
            self.arena = segment[0] if segment is not None else None
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if step_mode == "flat" and segment is None:
            raise ValueError(
                "step_mode='flat' requires parameters packed as one contiguous "
                "ParameterArena segment; pack them first or use step_mode='loop'"
            )
        self.step_mode = "flat" if (segment is not None and step_mode != "loop") else "loop"
        if segment is not None:
            arena, sl = segment
            # Contiguous flat views over the managed parameters — valid for
            # zero_grad in either mode, and the operand buffers of _step_flat.
            self._flat_data: np.ndarray | None = arena.data[sl]
            self._flat_grad: np.ndarray | None = arena.grad[sl]
        else:
            self._flat_data = None
            self._flat_grad = None
        if self.step_mode == "flat":
            dim = self._flat_data.size
            # Two (d,) scratch buffers shared by every flat kernel; after
            # this warm allocation _step_flat never allocates a d-length
            # temporary (asserted by benchmarks/bench_optim.py's probe).
            self._scratch_a = np.empty(dim)
            self._scratch_b = np.empty(dim)
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter.

        On the arena path this is a single ``fill(0.0)`` over the flat grad
        buffer; otherwise the per-parameter loop.
        """
        if self._flat_grad is not None:
            self._flat_grad.fill(0.0)
        else:
            for param in self.parameters:
                param.zero_grad()

    def step(self) -> None:
        """Apply one update using the parameters' current gradients."""
        self.step_count += 1
        with no_grad():
            if self.step_mode == "flat":
                self._step_flat()
            else:
                self._step()

    def _step(self) -> None:
        raise NotImplementedError

    def _step_flat(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _flat_effective_grad(self, weight_decay: float) -> np.ndarray:
        """The flat gradient with weight decay applied allocation-free.

        Returns the arena grad view directly when ``weight_decay`` is zero;
        otherwise materializes ``wd·data + grad`` into scratch ``a`` (the
        same elementwise sum the loop oracle computes) and returns it.
        """
        if not weight_decay:
            return self._flat_grad
        np.multiply(self._flat_data, weight_decay, out=self._scratch_a)
        self._scratch_a += self._flat_grad
        return self._scratch_a


class SGD(Optimizer):
    """Stochastic gradient descent with optional heavy-ball momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter] | ParameterArena,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        step_mode: str = "auto",
    ) -> None:
        super().__init__(parameters, lr, step_mode=step_mode)
        self.momentum = momentum
        self.weight_decay = weight_decay
        if self.step_mode == "flat":
            self._velocity_flat = np.zeros(self._flat_data.size) if momentum else None
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def _step_flat(self) -> None:
        grad = self._flat_effective_grad(self.weight_decay)
        if self.momentum:
            velocity = self._velocity_flat
            velocity *= self.momentum
            velocity += grad
            grad = velocity
        np.multiply(grad, self.lr, out=self._scratch_b)
        self._flat_data -= self._scratch_b


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction folded into scalars."""

    def __init__(
        self,
        parameters: Sequence[Parameter] | ParameterArena,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        step_mode: str = "auto",
    ) -> None:
        super().__init__(parameters, lr, step_mode=step_mode)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        if self.step_mode == "flat":
            dim = self._flat_data.size
            self._m_flat = np.zeros(dim)
            self._v_flat = np.zeros(dim)
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _bias_corrected_scalars(self) -> tuple[float, float]:
        """Fold both bias corrections into ``(alpha_t, eps_t)``.

        ``lr·m̂/(√v̂+eps)`` with ``m̂ = m/(1−β₁ᵗ)``, ``v̂ = v/(1−β₂ᵗ)`` equals
        ``alpha_t·m/(√v+eps_t)`` for ``alpha_t = lr·√(1−β₂ᵗ)/(1−β₁ᵗ)`` and
        ``eps_t = eps·√(1−β₂ᵗ)`` — no d-length ``m_hat``/``v_hat``
        temporaries on either path.
        """
        t = self.step_count
        bias2_sqrt = math.sqrt(1.0 - self.beta2**t)
        alpha_t = self.lr * bias2_sqrt / (1.0 - self.beta1**t)
        eps_t = self.eps * bias2_sqrt
        return alpha_t, eps_t

    def _step(self) -> None:
        alpha_t, eps_t = self._bias_corrected_scalars()
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            param.data -= alpha_t * m / (np.sqrt(v) + eps_t)

    def _step_flat(self) -> None:
        alpha_t, eps_t = self._bias_corrected_scalars()
        grad = self._flat_effective_grad(self.weight_decay)
        m, v = self._m_flat, self._v_flat
        scratch = self._scratch_b
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=scratch)
        m += scratch
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1.0 - self.beta2
        v += scratch
        # grad (possibly scratch_a) is no longer needed: reuse both buffers
        # for the update term alpha_t·m / (sqrt(v) + eps_t).
        np.sqrt(v, out=scratch)
        scratch += eps_t
        update = self._scratch_a
        np.multiply(m, alpha_t, out=update)
        update /= scratch
        self._flat_data -= update


class AdaGrad(Optimizer):
    """AdaGrad (Duchi et al., 2011)."""

    def __init__(
        self,
        parameters: Sequence[Parameter] | ParameterArena,
        lr: float = 1e-2,
        eps: float = 1e-10,
        step_mode: str = "auto",
    ) -> None:
        super().__init__(parameters, lr, step_mode=step_mode)
        self.eps = eps
        if self.step_mode == "flat":
            self._accumulator_flat = np.zeros(self._flat_data.size)
        else:
            self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, acc in zip(self.parameters, self._accumulator):
            if param.grad is None:
                continue
            acc += param.grad * param.grad
            param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)

    def _step_flat(self) -> None:
        grad = self._flat_grad
        acc = self._accumulator_flat
        denom, update = self._scratch_b, self._scratch_a
        np.multiply(grad, grad, out=denom)
        acc += denom
        np.sqrt(acc, out=denom)
        denom += self.eps
        np.multiply(grad, self.lr, out=update)
        update /= denom
        self._flat_data -= update


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton, 2012)."""

    def __init__(
        self,
        parameters: Sequence[Parameter] | ParameterArena,
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        step_mode: str = "auto",
    ) -> None:
        super().__init__(parameters, lr, step_mode=step_mode)
        self.alpha = alpha
        self.eps = eps
        if self.step_mode == "flat":
            self._avg_flat = np.zeros(self._flat_data.size)
        else:
            self._avg = [np.zeros_like(p.data) for p in self.parameters]

    def _step(self) -> None:
        for param, avg in zip(self.parameters, self._avg):
            if param.grad is None:
                continue
            avg *= self.alpha
            avg += (1.0 - self.alpha) * (param.grad * param.grad)
            param.data -= self.lr * param.grad / (np.sqrt(avg) + self.eps)

    def _step_flat(self) -> None:
        grad = self._flat_grad
        avg = self._avg_flat
        denom, update = self._scratch_b, self._scratch_a
        avg *= self.alpha
        np.multiply(grad, grad, out=denom)
        denom *= 1.0 - self.alpha
        avg += denom
        np.sqrt(avg, out=denom)
        denom += self.eps
        np.multiply(grad, self.lr, out=update)
        update /= denom
        self._flat_data -= update
