"""Module base class: parameter registration, traversal, train/eval modes.

Mirrors the minimal subset of ``torch.nn.Module`` the reproduction relies on.
Submodules and parameters are discovered automatically from attributes, so
model code looks like idiomatic PyTorch.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor; always requires grad.

    A parameter may be *packed* into a :class:`~repro.nn.arena.ParameterArena`,
    in which case ``.data`` and ``.grad`` are views into the arena's
    contiguous flat buffers and must be mutated in place rather than
    reassigned (see the arena module for the view invariants).
    """

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Set by ParameterArena when this parameter is packed; None means
        # the parameter owns standalone .data/.grad arrays.
        self._arena = None
        self._arena_offset = 0

    def zero_grad(self) -> None:
        """Clear the gradient.

        Unpacked parameters drop the gradient array (``grad = None``, the
        historical behaviour); packed parameters keep their arena view bound
        and zero it in place, so the view invariant survives.
        """
        if self._arena is not None:
            self.grad.fill(0.0)
        else:
            self.grad = None


class Module:
    """Base class for all neural network components."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs in deterministic attribute order."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its submodules."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule (depth-first)."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear the gradients of every parameter in the module tree."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch the whole module tree to training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch the whole module tree to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot parameter values (copied)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            param = params[name]
            if param.data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name}")
            if param._arena is not None:
                # Packed parameter: write through the arena view so the
                # flat-buffer binding survives checkpoint restores.
                np.copyto(param.data, value)
            else:
                param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses implement this."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of submodules registered for parameter traversal."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = list(modules)

    def append(self, module: Module) -> None:
        """Add a submodule to the end of the list."""
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def named_parameters(self, prefix: str = ""):
        for i, module in enumerate(self._items):
            sub = f"{prefix}.{i}" if prefix else str(i)
            yield from module.named_parameters(sub)

    def modules(self):
        yield self
        for module in self._items:
            yield from module.modules()

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its items instead")
