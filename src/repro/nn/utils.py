"""Parameter-vector utilities.

Gradient balancers operate on flat per-task gradient vectors over the shared
parameters; these helpers convert between parameter lists and flat vectors.

Every converter has an *arena fast path*: when the given parameters form one
contiguous segment of a :class:`~repro.nn.arena.ParameterArena` (detected via
:func:`~repro.nn.arena.packed_segment`), the per-parameter gather/scatter
loop collapses to a single slice.  ``grad_vector`` without ``out=`` is then
zero-copy (it returns a live view of the arena grad buffer); the setters
become one bulk ``memcpy`` into the packed buffers, preserving the
parameters' view bindings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .arena import packed_segment
from .module import Parameter

__all__ = [
    "grad_vector",
    "grad_vector_from_slots",
    "set_grad_from_vector",
    "parameter_vector",
    "set_parameters_from_vector",
    "clip_grad_norm",
]


def grad_vector(parameters: Sequence[Parameter], out: np.ndarray | None = None) -> np.ndarray:
    """Flatten the gradients of ``parameters`` into one vector.

    Parameters whose gradient is ``None`` contribute zeros, matching the
    LibMTL behaviour of treating unused shared parameters as zero-gradient.
    ``out`` may supply a preallocated destination (e.g. one row of the
    trainer's ``(K, d)`` workspace) — gradients are written straight into it
    with no intermediate concatenation.

    Arena fast path: for a contiguous packed segment the result *is* the
    arena's flat grad slice — returned as a zero-copy live view when ``out``
    is omitted (mutations write through to ``param.grad``; copy it if you
    need a snapshot), or bulk-copied into ``out`` in one vector op.
    """
    segment = packed_segment(parameters)
    if segment is not None:
        arena, sl = segment
        view = arena.grad[sl]
        if out is None:
            return view
        if out.shape != view.shape:
            raise ValueError(f"out has shape {out.shape}; expected {view.shape}")
        out[:] = view
        return out
    total = sum(param.size for param in parameters)
    if out is None:
        out = np.empty(total)
    elif out.shape != (total,):
        raise ValueError(f"out has shape {out.shape}; expected ({total},)")
    offset = 0
    for param in parameters:
        size = param.size
        grad = param.grad
        if grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = grad.reshape(-1)
        offset += size
    return out


def grad_vector_from_slots(
    parameters: Sequence[Parameter],
    slots: Sequence[Sequence[np.ndarray | None]],
    root: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Flatten one root's per-parameter gradient slots into a vector.

    ``slots`` is the structure :func:`repro.nn.tensor.backward_multi`
    returns for ``per_root=parameters``: ``slots[i][root]`` is the gradient
    of root ``root`` w.r.t. ``parameters[i]`` (``None`` meaning the root's
    graph never reached that parameter — written as zeros, mirroring
    :func:`grad_vector`).  Writes directly into ``out`` when given.
    """
    total = sum(param.size for param in parameters)
    if out is None:
        out = np.empty(total)
    elif out.shape != (total,):
        raise ValueError(f"out has shape {out.shape}; expected ({total},)")
    offset = 0
    for param, param_slots in zip(parameters, slots):
        size = param.size
        grad = param_slots[root]
        if grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = grad.reshape(-1)
        offset += size
    return out


def set_grad_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write a flat gradient vector back into ``param.grad`` buffers.

    The length check runs *before* any write, so a mismatched vector never
    partially mutates the gradients.  On the arena fast path the whole
    scatter is one bulk copy into the packed grad buffer; packed parameters
    reached through the per-parameter path are written in place so their
    arena view binding survives.
    """
    total = sum(param.size for param in parameters)
    if vector.size != total:
        raise ValueError(f"vector length {vector.size} does not match parameters ({total})")
    segment = packed_segment(parameters)
    if segment is not None:
        arena, sl = segment
        arena.grad[sl] = vector
        return
    offset = 0
    for param in parameters:
        size = param.size
        chunk = vector[offset : offset + size].reshape(param.data.shape)
        if param._arena is not None:
            np.copyto(param.grad, chunk)
        else:
            param.grad = chunk.copy()
        offset += size


def parameter_vector(parameters: Sequence[Parameter]) -> np.ndarray:
    """Flatten parameter values into one vector (copied).

    Arena fast path: one slice copy of the packed data buffer instead of a
    per-parameter concatenation.
    """
    segment = packed_segment(parameters)
    if segment is not None:
        arena, sl = segment
        return arena.data[sl].copy()
    return np.concatenate([p.data.reshape(-1) for p in parameters]) if parameters else np.zeros(0)


def set_parameters_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write flat values back into parameters.

    The length check runs *before* any write (mirroring
    :func:`set_grad_from_vector`), so a mismatched vector never partially
    mutates model weights.  Packed parameters are written through their
    arena views (one bulk copy on the contiguous fast path), keeping the
    arena binding intact.
    """
    total = sum(param.size for param in parameters)
    if vector.size != total:
        raise ValueError(f"vector length {vector.size} does not match parameters ({total})")
    segment = packed_segment(parameters)
    if segment is not None:
        arena, sl = segment
        arena.data[sl] = vector
        return
    offset = 0
    for param in parameters:
        size = param.size
        chunk = vector[offset : offset + size].reshape(param.data.shape)
        if param._arena is not None:
            np.copyto(param.data, chunk)
        else:
            param.data = chunk.copy()
        offset += size


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip total gradient norm in place; return the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total
