"""Parameter-vector utilities.

Gradient balancers operate on flat per-task gradient vectors over the shared
parameters; these helpers convert between parameter lists and flat vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = [
    "grad_vector",
    "set_grad_from_vector",
    "parameter_vector",
    "set_parameters_from_vector",
    "clip_grad_norm",
]


def grad_vector(parameters: Sequence[Parameter]) -> np.ndarray:
    """Flatten the gradients of ``parameters`` into one vector.

    Parameters whose gradient is ``None`` contribute zeros, matching the
    LibMTL behaviour of treating unused shared parameters as zero-gradient.
    """
    pieces = []
    for param in parameters:
        if param.grad is None:
            pieces.append(np.zeros(param.size))
        else:
            pieces.append(param.grad.reshape(-1).copy())
    return np.concatenate(pieces) if pieces else np.zeros(0)


def set_grad_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write a flat gradient vector back into ``param.grad`` buffers."""
    offset = 0
    for param in parameters:
        size = param.size
        param.grad = vector[offset : offset + size].reshape(param.data.shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError(f"vector length {vector.size} does not match parameters ({offset})")


def parameter_vector(parameters: Sequence[Parameter]) -> np.ndarray:
    """Flatten parameter values into one vector (copied)."""
    return np.concatenate([p.data.reshape(-1) for p in parameters]) if parameters else np.zeros(0)


def set_parameters_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write flat values back into parameters."""
    offset = 0
    for param in parameters:
        size = param.size
        param.data = vector[offset : offset + size].reshape(param.data.shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError(f"vector length {vector.size} does not match parameters ({offset})")


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip total gradient norm in place; return the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total
