"""Parameter-vector utilities.

Gradient balancers operate on flat per-task gradient vectors over the shared
parameters; these helpers convert between parameter lists and flat vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = [
    "grad_vector",
    "grad_vector_from_slots",
    "set_grad_from_vector",
    "parameter_vector",
    "set_parameters_from_vector",
    "clip_grad_norm",
]


def grad_vector(parameters: Sequence[Parameter], out: np.ndarray | None = None) -> np.ndarray:
    """Flatten the gradients of ``parameters`` into one vector.

    Parameters whose gradient is ``None`` contribute zeros, matching the
    LibMTL behaviour of treating unused shared parameters as zero-gradient.
    ``out`` may supply a preallocated destination (e.g. one row of the
    trainer's ``(K, d)`` workspace) — gradients are written straight into it
    with no intermediate concatenation.
    """
    total = sum(param.size for param in parameters)
    if out is None:
        out = np.empty(total)
    elif out.shape != (total,):
        raise ValueError(f"out has shape {out.shape}; expected ({total},)")
    offset = 0
    for param in parameters:
        size = param.size
        grad = param.grad
        if grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = grad.reshape(-1)
        offset += size
    return out


def grad_vector_from_slots(
    parameters: Sequence[Parameter],
    slots: Sequence[Sequence[np.ndarray | None]],
    root: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Flatten one root's per-parameter gradient slots into a vector.

    ``slots`` is the structure :func:`repro.nn.tensor.backward_multi`
    returns for ``per_root=parameters``: ``slots[i][root]`` is the gradient
    of root ``root`` w.r.t. ``parameters[i]`` (``None`` meaning the root's
    graph never reached that parameter — written as zeros, mirroring
    :func:`grad_vector`).  Writes directly into ``out`` when given.
    """
    total = sum(param.size for param in parameters)
    if out is None:
        out = np.empty(total)
    elif out.shape != (total,):
        raise ValueError(f"out has shape {out.shape}; expected ({total},)")
    offset = 0
    for param, param_slots in zip(parameters, slots):
        size = param.size
        grad = param_slots[root]
        if grad is None:
            out[offset : offset + size] = 0.0
        else:
            out[offset : offset + size] = grad.reshape(-1)
        offset += size
    return out


def set_grad_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write a flat gradient vector back into ``param.grad`` buffers.

    The length check runs *before* any write, so a mismatched vector never
    partially mutates the gradients.
    """
    total = sum(param.size for param in parameters)
    if vector.size != total:
        raise ValueError(f"vector length {vector.size} does not match parameters ({total})")
    offset = 0
    for param in parameters:
        size = param.size
        param.grad = vector[offset : offset + size].reshape(param.data.shape).copy()
        offset += size


def parameter_vector(parameters: Sequence[Parameter]) -> np.ndarray:
    """Flatten parameter values into one vector (copied)."""
    return np.concatenate([p.data.reshape(-1) for p in parameters]) if parameters else np.zeros(0)


def set_parameters_from_vector(parameters: Sequence[Parameter], vector: np.ndarray) -> None:
    """Write flat values back into parameters."""
    offset = 0
    for param in parameters:
        size = param.size
        param.data = vector[offset : offset + size].reshape(param.data.shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError(f"vector length {vector.size} does not match parameters ({offset})")


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip total gradient norm in place; return the pre-clip norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total
