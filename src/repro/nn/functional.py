"""Functional neural-network operations built on :mod:`repro.nn.tensor`.

Losses follow the reduction conventions of the paper's experimental stack:
every loss returns a scalar tensor (mean over the batch) unless stated
otherwise, because the multi-task trainer back-propagates one scalar per task.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor, where

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "gelu",
    "softmax",
    "log_softmax",
    "mse_loss",
    "l1_loss",
    "huber_loss",
    "bce_with_logits",
    "cross_entropy",
    "nll_loss",
    "cosine_similarity",
]


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Elementwise leaky ReLU."""
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error over all elements."""
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta``, linear outside."""
    target = as_tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def bce_with_logits(logits: Tensor, target) -> Tensor:
    """Numerically stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    target = as_tensor(target)
    positive = logits.clip(0.0, np.inf)
    softplus = (1.0 + (-logits.abs()).exp()).log()
    return (positive - logits * target + softplus).mean()


def cross_entropy(logits: Tensor, target_indices, axis: int = -1) -> Tensor:
    """Cross entropy between raw ``logits`` and integer class labels.

    ``target_indices`` is an integer array; for dense prediction tasks the
    logits may carry extra leading axes, e.g. ``(batch, H, W, classes)``
    paired with labels of shape ``(batch, H, W)``.
    """
    target_indices = np.asarray(target_indices)
    log_probs = log_softmax(logits, axis=axis)
    if axis not in (-1, log_probs.ndim - 1):
        raise ValueError("cross_entropy expects the class axis to be last")
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    labels = target_indices.reshape(-1).astype(np.int64)
    picked = flat[np.arange(flat.shape[0]), labels]
    return -picked.mean()


def nll_loss(log_probs: Tensor, target_indices) -> Tensor:
    """Negative log likelihood over pre-computed log probabilities."""
    target_indices = np.asarray(target_indices).reshape(-1).astype(np.int64)
    flat = log_probs.reshape(-1, log_probs.shape[-1])
    picked = flat[np.arange(flat.shape[0]), target_indices]
    return -picked.mean()


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Cosine similarity along the last axis."""
    dot = (a * b).sum(axis=-1)
    norm_a = ((a * a).sum(axis=-1) + eps).sqrt()
    norm_b = ((b * b).sum(axis=-1) + eps).sqrt()
    return dot / (norm_a * norm_b)
