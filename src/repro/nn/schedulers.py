"""Learning-rate schedulers, including the paper's Corollary 1 schedule.

Corollary 1 proves MoCoGrad's O(√T) regret under the decaying schedules
μ_t = μ/t^p and λ_t = λ/t^p with p = 1/2.  :class:`InverseSqrt` (and the
general :class:`InversePower`) implement exactly that schedule for the
optimizer side; the balancer side is ``MoCoGrad(calibration_decay=...)``.

All schedulers mutate ``optimizer.lr`` in place on :meth:`step` and follow
the convention of being stepped once per epoch (or once per iteration for
the theory schedules — the unit is up to the caller, matching PyTorch).
"""

from __future__ import annotations

import numpy as np

from .optim import Optimizer

__all__ = ["Scheduler", "StepDecay", "CosineAnnealing", "InversePower", "InverseSqrt"]


class Scheduler:
    """Base class: tracks the step count and the base learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.count = 0

    def step(self) -> float:
        """Advance the schedule; returns the new learning rate."""
        self.count += 1
        self.optimizer.lr = self.compute_lr(self.count)
        return self.optimizer.lr

    def compute_lr(self, count: int) -> float:
        """The learning rate after ``count`` scheduler steps.

        Implementations must return a builtin :class:`float` — a numpy
        scalar here would leak into ``optimizer.lr`` and from there into
        telemetry JSONL, where ``np.float64`` is not JSON-serializable.
        """
        raise NotImplementedError


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if period < 1:
            raise ValueError("period must be ≥ 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.period = period
        self.gamma = gamma

    def compute_lr(self, count: int) -> float:
        return float(self.base_lr * self.gamma ** (count // self.period))


class CosineAnnealing(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be ≥ 1")
        if min_lr < 0:
            raise ValueError("min_lr must be ≥ 0")
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, count: int) -> float:
        progress = min(count, self.total_steps) / self.total_steps
        return float(
            self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))
        )


class InversePower(Scheduler):
    """Corollary 1 schedule ``lr_t = base / t^p``."""

    def __init__(self, optimizer: Optimizer, power: float = 0.5) -> None:
        super().__init__(optimizer)
        if power <= 0:
            raise ValueError("power must be positive")
        self.power = power

    def compute_lr(self, count: int) -> float:
        return float(self.base_lr / count**self.power)


class InverseSqrt(InversePower):
    """``lr_t = base / √t`` — the p = 1/2 rate Corollary 1 optimizes."""

    def __init__(self, optimizer: Optimizer) -> None:
        super().__init__(optimizer, power=0.5)
